//! The hybrid type-checking environment (§4.1).
//!
//! The formal model's environment is a bag of propositions; the paper
//! notes that a real implementation should split it into (a) a standard
//! mapping from objects to known positive/negative type information —
//! iteratively refined with the `update` metafunction — and (b) the set of
//! remaining compound propositions. This module implements that split,
//! together with the *representative objects* optimization: aliases
//! (`x ≡ o`) are applied eagerly, so every stored fact speaks about a
//! canonical representative.
//!
//! Two implementation techniques make environments cheap enough for the
//! judgments' pervasive snapshot-and-extend style:
//!
//! * every store is `Arc`-backed copy-on-write, so [`Env::clone`] is a
//!   handful of reference-count bumps instead of deep `HashMap` copies
//!   (the checker clones environments at every binder, branch and case
//!   split);
//! * a monotonic, globally unique **generation** stamp: every mutation
//!   assigns a fresh generation, so two environments with equal
//!   generations have identical contents. The checker's memo tables key
//!   judgments on `(generation, ids…)`.
//!
//! Deferred disjunctions are stored as interned [`PropId`]s, so cloning
//! and case-splitting never deep-copies proposition trees.
//!
//! `Env` is pure data; the judgments that manipulate it (assumption,
//! proving, subtyping, update) live on [`crate::check::Checker`].

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::intern::PropId;
use crate::syntax::{BvAtomProp, LinAtom, Obj, Path, Prop, StrAtomProp, Symbol, Ty};

/// Hands out globally unique environment generations. Generation 0 is
/// reserved for empty environments (all of which are identical).
fn next_generation() -> u64 {
    static GEN: AtomicU64 = AtomicU64::new(1);
    GEN.fetch_add(1, Ordering::Relaxed)
}

/// Hands out globally unique linear-theory-store epochs. Epoch 0 is
/// reserved for the empty store. Separate from the generation counter so
/// solver-state caches keyed by epoch survive non-theory env mutations.
fn next_lin_epoch() -> u64 {
    static EPOCH: AtomicU64 = AtomicU64::new(1);
    EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// A type-checking environment Γ.
#[derive(Clone, Debug, Default)]
pub struct Env {
    /// Eager alias substitutions: `x ↦ o` (representative objects, §4.1).
    aliases: Arc<HashMap<Symbol, Obj>>,
    /// Positive type information per variable, refined via `update`.
    types: Arc<HashMap<Symbol, Ty>>,
    /// Negative type information per path (`o ∉ τ` facts).
    negs: Arc<HashMap<Path, Vec<Ty>>>,
    /// Remaining compound propositions (disjunctions), case-split on
    /// demand at proof time; stored interned.
    disjs: Arc<Vec<(PropId, PropId)>>,
    /// Linear-arithmetic theory literals.
    lin_facts: Arc<Vec<LinAtom>>,
    /// Bitvector theory literals.
    bv_facts: Arc<Vec<BvAtomProp>>,
    /// Regex theory literals.
    str_facts: Arc<Vec<StrAtomProp>>,
    /// Deferred type atoms `(path, τ, positive)` — only populated in the
    /// pure-proposition-environment ablation (`hybrid_env = false`),
    /// where they are replayed through `update±` at query time instead of
    /// refining the stored types eagerly.
    pending: Arc<Vec<(Path, Ty, bool)>>,
    /// Variables the mutation analysis flagged (§4.2); they never get
    /// symbolic objects and runtime tests on them teach the system
    /// nothing.
    mutables: Arc<HashSet<Symbol>>,
    /// Set when `ff` (or a contradiction) has been assumed.
    absurd: bool,
    /// Content stamp: 0 for the empty environment, else globally unique.
    generation: u64,
    /// Content stamp of `lin_facts` alone: 0 when empty, else globally
    /// unique. Unlike `generation` it survives non-theory mutations, so
    /// solver-state caches keyed on it stay warm while the environment
    /// learns type facts.
    lin_epoch: u64,
    /// The `lin_epoch` this store was extended from by appending facts
    /// (`lin_facts[..n]` is exactly the parent's store). `None` after
    /// non-append edits (`unbind`), which force a from-scratch solve.
    lin_parent: Option<u64>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// The environment's content stamp. Two environments with the same
    /// generation hold identical facts; every mutation produces a fresh,
    /// globally unique generation. Memo tables use this as a cache key.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn touch(&mut self) {
        self.generation = next_generation();
    }

    /// Marks `x` as mutable (no symbolic object, §4.2).
    pub fn mark_mutable(&mut self, x: Symbol) {
        self.touch();
        Arc::make_mut(&mut self.mutables).insert(x);
    }

    /// Is `x` mutable?
    pub fn is_mutable(&self, x: Symbol) -> bool {
        self.mutables.contains(&x)
    }

    /// Records that the environment is contradictory.
    pub fn mark_absurd(&mut self) {
        if self.absurd {
            return;
        }
        self.touch();
        self.absurd = true;
    }

    /// Has `ff` been assumed (directly or via a detected contradiction)?
    pub fn is_absurd(&self) -> bool {
        self.absurd
    }

    /// Adds an eager alias `x ↦ o`. The caller must ensure `o` does not
    /// (transitively) mention `x`; aliases are only created for freshly
    /// bound variables, which guarantees acyclicity.
    pub fn add_alias(&mut self, x: Symbol, o: Obj) {
        debug_assert!({
            let mut fv = HashSet::new();
            o.free_vars(&mut fv);
            !fv.contains(&x)
        });
        self.touch();
        Arc::make_mut(&mut self.aliases).insert(x, o);
    }

    /// Forgets everything recorded about `x`: its type, aliases from or
    /// through it, negative facts, theory literals and disjunctions that
    /// mention it, and any embedded reference from other bindings' types.
    /// Used when a binder *shadows* an existing variable — the facts about
    /// the outer `x` must not leak onto the inner one. Dropping facts is
    /// always sound (it only weakens the environment).
    pub fn unbind(&mut self, x: Symbol) {
        self.touch();
        let mentions_obj = |o: &Obj| {
            let mut fv = HashSet::new();
            o.free_vars(&mut fv);
            fv.contains(&x)
        };
        let types = Arc::make_mut(&mut self.types);
        types.remove(&x);
        let aliases = Arc::make_mut(&mut self.aliases);
        aliases.remove(&x);
        aliases.retain(|_, o| !mentions_obj(o));
        let negs = Arc::make_mut(&mut self.negs);
        negs.retain(|p, _| p.base != x);
        for ts in negs.values_mut() {
            for t in ts.iter_mut() {
                *t = t.subst_obj(x, &Obj::Null);
            }
        }
        for t in types.values_mut() {
            *t = t.subst_obj(x, &Obj::Null);
        }
        let mentions_prop = |p: &Prop| {
            let mut fv = HashSet::new();
            p.free_vars(&mut fv);
            fv.contains(&x)
        };
        Arc::make_mut(&mut self.disjs)
            .retain(|(p, q)| !mentions_prop(&p.get()) && !mentions_prop(&q.get()));
        let lin_before = self.lin_facts.len();
        Arc::make_mut(&mut self.lin_facts).retain(|a| !mentions_prop(&Prop::Lin(a.clone())));
        if self.lin_facts.len() != lin_before {
            // Not an append: incremental solver states can't extend this.
            self.lin_epoch = if self.lin_facts.is_empty() {
                0
            } else {
                next_lin_epoch()
            };
            self.lin_parent = None;
        }
        Arc::make_mut(&mut self.bv_facts).retain(|a| !mentions_prop(&Prop::Bv(a.clone())));
        Arc::make_mut(&mut self.str_facts).retain(|a| !mentions_prop(&Prop::Str(a.clone())));
        Arc::make_mut(&mut self.pending).retain(|(p, t, _)| {
            if p.base == x {
                return false;
            }
            let mut fv = HashSet::new();
            Prop::is(Obj::Path(p.clone()), t.clone()).free_vars(&mut fv);
            !fv.contains(&x)
        });
    }

    /// Does `o` mention any variable with an alias? Allocation-free
    /// pre-check for [`Env::resolve`].
    fn mentions_aliased(&self, o: &Obj) -> bool {
        fn walk(env: &Env, o: &Obj) -> bool {
            match o {
                Obj::Null | Obj::Str(_) | Obj::Re(_) => false,
                Obj::Path(p) => env.aliases.contains_key(&p.base),
                Obj::Pair(a, b) => walk(env, a) || walk(env, b),
                Obj::Lin(l) => l
                    .terms
                    .iter()
                    .any(|(_, p)| env.aliases.contains_key(&p.base)),
                Obj::Bv(_) => true, // rare; defer to the full resolution loop
            }
        }
        walk(self, o)
    }

    /// Resolves an object to its representative by applying aliases to a
    /// fixpoint.
    pub fn resolve(&self, o: &Obj) -> Obj {
        if self.aliases.is_empty() || !self.mentions_aliased(o) {
            return o.clone();
        }
        let mut cur = o.clone();
        for _ in 0..64 {
            let mut fv = HashSet::new();
            cur.free_vars(&mut fv);
            let Some(&x) = fv.iter().find(|x| self.aliases.contains_key(x)) else {
                return cur;
            };
            cur = cur.subst(x, &self.aliases[&x]);
        }
        cur
    }

    /// The raw recorded type of variable `x`, if any.
    pub fn raw_ty(&self, x: Symbol) -> Option<&Ty> {
        self.types.get(&x)
    }

    /// Overwrites the recorded type of `x`.
    ///
    /// Writing back an unchanged type is a no-op — `update±` frequently
    /// returns its input (e.g. `len`-field updates never refine the type
    /// structure), and skipping the write both avoids a copy-on-write
    /// clone of the shared map and keeps the generation (and with it every
    /// memoized verdict about this environment) alive.
    pub fn set_ty(&mut self, x: Symbol, t: Ty) {
        if self.types.get(&x) == Some(&t) {
            return;
        }
        self.touch();
        Arc::make_mut(&mut self.types).insert(x, t);
    }

    /// Is `x` bound (has a recorded type or an alias)?
    pub fn is_bound(&self, x: Symbol) -> bool {
        self.types.contains_key(&x) || self.aliases.contains_key(&x)
    }

    /// Records a negative type fact for `path` (duplicates dropped).
    pub fn add_neg(&mut self, path: Path, t: Ty) {
        if self.negs.get(&path).is_some_and(|ts| ts.contains(&t)) {
            return;
        }
        self.touch();
        Arc::make_mut(&mut self.negs)
            .entry(path)
            .or_default()
            .push(t);
    }

    /// The negative facts recorded for `path`.
    pub fn negs_of(&self, path: &Path) -> &[Ty] {
        self.negs.get(path).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(path, negated types)` entries.
    pub fn negs(&self) -> impl Iterator<Item = (&Path, &[Ty])> {
        self.negs.iter().map(|(p, ts)| (p, ts.as_slice()))
    }

    /// All `(variable, positive type)` entries.
    pub fn types(&self) -> impl Iterator<Item = (Symbol, &Ty)> {
        self.types.iter().map(|(&x, t)| (x, t))
    }

    /// Stores an (interned) disjunction for later case splitting.
    /// Duplicates are dropped: re-proving the same disjunction adds no
    /// information and every copy multiplies the case-split search.
    pub fn add_disj(&mut self, lhs: PropId, rhs: PropId) {
        if self.disjs.contains(&(lhs, rhs)) {
            return;
        }
        self.touch();
        Arc::make_mut(&mut self.disjs).push((lhs, rhs));
    }

    /// The stored disjunctions.
    pub fn disjs(&self) -> &[(PropId, PropId)] {
        &self.disjs
    }

    /// Removes and returns the `i`-th stored disjunction.
    pub fn take_disj(&mut self, i: usize) -> (PropId, PropId) {
        self.touch();
        Arc::make_mut(&mut self.disjs).swap_remove(i)
    }

    /// Appends a linear-arithmetic fact (duplicates are dropped — they
    /// only widen every later solver translation).
    pub fn add_lin_fact(&mut self, a: LinAtom) {
        if self.lin_facts.contains(&a) {
            return;
        }
        self.touch();
        self.lin_parent = Some(self.lin_epoch);
        self.lin_epoch = next_lin_epoch();
        Arc::make_mut(&mut self.lin_facts).push(a);
    }

    /// The accumulated linear facts.
    pub fn lin_facts(&self) -> &[LinAtom] {
        &self.lin_facts
    }

    /// The linear store's content stamp (0 = empty store); see the field
    /// docs. Solver caches key incremental elimination states on this.
    pub fn lin_epoch(&self) -> u64 {
        self.lin_epoch
    }

    /// The epoch this store extends by appended facts, if any.
    pub fn lin_parent(&self) -> Option<u64> {
        self.lin_parent
    }

    /// Appends a bitvector fact.
    pub fn add_bv_fact(&mut self, a: BvAtomProp) {
        self.touch();
        Arc::make_mut(&mut self.bv_facts).push(a);
    }

    /// The accumulated bitvector facts.
    pub fn bv_facts(&self) -> &[BvAtomProp] {
        &self.bv_facts
    }

    /// Appends a regex-membership fact.
    pub fn add_str_fact(&mut self, a: StrAtomProp) {
        self.touch();
        Arc::make_mut(&mut self.str_facts).push(a);
    }

    /// The accumulated regex-membership facts.
    pub fn str_facts(&self) -> &[StrAtomProp] {
        &self.str_facts
    }

    /// Defers a type atom for query-time replay (pure-proposition mode).
    pub fn add_pending(&mut self, p: Path, t: Ty, positive: bool) {
        self.touch();
        Arc::make_mut(&mut self.pending).push((p, t, positive));
    }

    /// The deferred type atoms, in assumption order.
    pub fn pending(&self) -> &[(Path, Ty, bool)] {
        &self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn alias_resolution_reaches_fixpoint() {
        let mut env = Env::new();
        // x ↦ y + 1, y ↦ z
        env.add_alias(s("res_x"), Obj::var(s("res_y")).add(&Obj::int(1)));
        env.add_alias(s("res_y"), Obj::var(s("res_z")));
        let got = env.resolve(&Obj::var(s("res_x")));
        assert_eq!(got, Obj::var(s("res_z")).add(&Obj::int(1)));
    }

    #[test]
    fn resolve_is_identity_without_aliases() {
        let env = Env::new();
        let o = Obj::var(s("plain")).len();
        assert_eq!(env.resolve(&o), o);
    }

    #[test]
    fn mutability_flag() {
        let mut env = Env::new();
        assert!(!env.is_mutable(s("m")));
        env.mark_mutable(s("m"));
        assert!(env.is_mutable(s("m")));
    }

    #[test]
    fn negs_round_trip() {
        let mut env = Env::new();
        let p = Path::var(s("n"));
        env.add_neg(p.clone(), Ty::Int);
        assert_eq!(env.negs_of(&p), &[Ty::Int]);
        assert!(env.negs_of(&Path::var(s("other"))).is_empty());
    }

    #[test]
    fn clones_are_cheap_snapshots() {
        let mut env = Env::new();
        env.set_ty(s("snap"), Ty::Int);
        let snapshot = env.clone();
        assert_eq!(snapshot.generation(), env.generation());
        // Mutating the clone neither disturbs the original nor keeps the
        // old generation.
        let mut fork = snapshot.clone();
        fork.set_ty(s("snap"), Ty::bool_ty());
        assert_eq!(env.raw_ty(s("snap")), Some(&Ty::Int));
        assert_eq!(fork.raw_ty(s("snap")), Some(&Ty::bool_ty()));
        assert_ne!(fork.generation(), env.generation());
    }

    #[test]
    fn empty_environments_share_generation_zero() {
        assert_eq!(Env::new().generation(), 0);
        assert_eq!(Env::default().generation(), 0);
        let mut env = Env::new();
        env.mark_mutable(s("gen_bump"));
        assert_ne!(env.generation(), 0);
    }
}
