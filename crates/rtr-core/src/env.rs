//! The hybrid type-checking environment (§4.1), id-native.
//!
//! The formal model's environment is a bag of propositions; the paper
//! notes that a real implementation should split it into (a) a standard
//! mapping from objects to known positive/negative type information —
//! iteratively refined with the `update` metafunction — and (b) the set of
//! remaining compound propositions. This module implements that split,
//! together with the *representative objects* optimization: aliases
//! (`x ≡ o`) are applied eagerly, so every stored fact speaks about a
//! canonical representative.
//!
//! Three implementation techniques make environments cheap enough for the
//! judgments' pervasive snapshot-and-extend style:
//!
//! * the `types` and `aliases` maps are **persistent HAMTs**
//!   ([`crate::pmap::PMap`]): cloning an environment is a handful of
//!   reference-count bumps, and — unlike the previous `Arc<HashMap>`
//!   copy-on-write — the first write after a snapshot copies only the
//!   `O(log n)` trie path to the touched key, so deep binder chains no
//!   longer pay a quadratic map-copy toll;
//! * the maps store **interned ids** ([`TyId`]/[`ObjId`]), not trees.
//!   Reads and writes on the judgments' hot paths move ids around;
//!   the tree⇄id boundary sits at the AST-facing edges (synthesis
//!   entry and error rendering). Id storage also makes the no-op-write
//!   check and [`Env::unbind`]'s "does anything mention `x`?" scan a few
//!   integer comparisons against intern-time metadata;
//! * a monotonic, globally unique **generation** stamp: every mutation
//!   assigns a fresh generation, so two environments with equal
//!   generations have identical contents. The checker's memo tables key
//!   judgments on `(generation, ids…)`. Generations stay sound across
//!   HAMT snapshots for the same reason they were sound across map
//!   clones: a snapshot shares its parent's generation exactly until its
//!   first mutation, which stamps a fresh one.
//!
//! Deferred disjunctions are stored as interned [`PropId`]s, so cloning
//! and case-splitting never deep-copies proposition trees.
//!
//! `Env` is pure data; the judgments that manipulate it (assumption,
//! proving, subtyping, update) live on [`crate::check::Checker`].

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::intern::{ObjId, PropId, TyId};
use crate::pmap::PMap;
use crate::syntax::{BvAtomProp, LinAtom, Obj, Path, StrAtomProp, Symbol, Ty};

/// Hands out globally unique environment generations. Generation 0 is
/// reserved for empty environments (all of which are identical).
fn next_generation() -> u64 {
    static GEN: AtomicU64 = AtomicU64::new(1);
    GEN.fetch_add(1, Ordering::Relaxed)
}

/// Hands out globally unique linear-theory-store epochs. Epoch 0 is
/// reserved for the empty store. Separate from the generation counter so
/// solver-state caches keyed by epoch survive non-theory env mutations.
fn next_lin_epoch() -> u64 {
    static EPOCH: AtomicU64 = AtomicU64::new(1);
    EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Environment-level counters (`stats` feature): snapshots taken and
/// unbind scans resolved purely from id metadata.
#[cfg(feature = "stats")]
pub(crate) mod stats {
    use std::sync::atomic::AtomicU64;

    /// `Env::clone` calls (the checker snapshots at every binder/branch).
    pub static SNAPSHOTS: AtomicU64 = AtomicU64::new(0);
    /// `Env::unbind` calls that needed no per-binding rewrite at all
    /// (the id metadata proved nothing mentions the unbound variable).
    pub static UNBIND_FAST: AtomicU64 = AtomicU64::new(0);
    /// Total `Env::unbind` calls.
    pub static UNBIND_TOTAL: AtomicU64 = AtomicU64::new(0);
}

/// A snapshot of the environment/`PMap` counters (`stats` feature).
#[cfg(feature = "stats")]
#[derive(Clone, Copy, Debug, Default)]
pub struct EnvStats {
    /// Environment snapshots taken (`Env::clone`).
    pub snapshots: u64,
    /// `unbind` calls that were pure map removes.
    pub unbind_fast: u64,
    /// Total `unbind` calls.
    pub unbind_total: u64,
    /// Insert/remove operations on the persistent maps.
    pub pmap_writes: u64,
    /// Trie nodes physically cloned by those writes (copy-on-write hits
    /// on shared nodes).
    pub pmap_nodes_cloned: u64,
    /// Entries a whole-map copy-on-write clone would have copied instead
    /// — `1 - nodes_cloned / entries_spared` is the structural-share
    /// rate.
    pub pmap_entries_spared: u64,
}

/// Reads the global environment/map counters.
#[cfg(feature = "stats")]
pub fn env_stats() -> EnvStats {
    use std::sync::atomic::Ordering::Relaxed;
    EnvStats {
        snapshots: stats::SNAPSHOTS.load(Relaxed),
        unbind_fast: stats::UNBIND_FAST.load(Relaxed),
        unbind_total: stats::UNBIND_TOTAL.load(Relaxed),
        pmap_writes: crate::pmap::stats::WRITES.load(Relaxed),
        pmap_nodes_cloned: crate::pmap::stats::NODES_CLONED.load(Relaxed),
        pmap_entries_spared: crate::pmap::stats::ENTRIES_SPARED.load(Relaxed),
    }
}

/// A type-checking environment Γ.
#[derive(Debug, Default)]
pub struct Env {
    /// Eager alias substitutions: `x ↦ o` (representative objects, §4.1),
    /// stored interned in a persistent map.
    aliases: PMap<ObjId>,
    /// Positive type information per variable, refined via `update`;
    /// interned ids in a persistent map.
    types: PMap<TyId>,
    /// Negative type information per path (`o ∉ τ` facts), interned.
    negs: Arc<HashMap<Path, Vec<TyId>>>,
    /// Remaining compound propositions (disjunctions), case-split on
    /// demand at proof time; stored interned.
    disjs: Arc<Vec<(PropId, PropId)>>,
    /// Linear-arithmetic theory literals.
    lin_facts: Arc<Vec<LinAtom>>,
    /// Bitvector theory literals.
    bv_facts: Arc<Vec<BvAtomProp>>,
    /// Regex theory literals.
    str_facts: Arc<Vec<StrAtomProp>>,
    /// Deferred type atoms `(path, τ, positive)` — only populated in the
    /// pure-proposition-environment ablation (`hybrid_env = false`),
    /// where they are replayed through `update±` at query time instead of
    /// refining the stored types eagerly.
    pending: Arc<Vec<(Path, TyId, bool)>>,
    /// Variables the mutation analysis flagged (§4.2); they never get
    /// symbolic objects and runtime tests on them teach the system
    /// nothing.
    mutables: Arc<HashSet<Symbol>>,
    /// Set when `ff` (or a contradiction) has been assumed.
    absurd: bool,
    /// Content stamp: 0 for the empty environment, else globally unique.
    generation: u64,
    /// Content stamp of `lin_facts` alone: 0 when empty, else globally
    /// unique. Unlike `generation` it survives non-theory mutations, so
    /// solver-state caches keyed on it stay warm while the environment
    /// learns type facts.
    lin_epoch: u64,
    /// The `lin_epoch` this store was extended from by appending facts
    /// (`lin_facts[..n]` is exactly the parent's store). `None` after
    /// non-append edits (`unbind`), which force a from-scratch solve.
    lin_parent: Option<u64>,
}

impl Clone for Env {
    fn clone(&self) -> Env {
        #[cfg(feature = "stats")]
        stats::SNAPSHOTS.fetch_add(1, Ordering::Relaxed);
        Env {
            aliases: self.aliases.clone(),
            types: self.types.clone(),
            negs: self.negs.clone(),
            disjs: self.disjs.clone(),
            lin_facts: self.lin_facts.clone(),
            bv_facts: self.bv_facts.clone(),
            str_facts: self.str_facts.clone(),
            pending: self.pending.clone(),
            mutables: self.mutables.clone(),
            absurd: self.absurd,
            generation: self.generation,
            lin_epoch: self.lin_epoch,
            lin_parent: self.lin_parent,
        }
    }
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// The environment's content stamp. Two environments with the same
    /// generation hold identical facts; every mutation produces a fresh,
    /// globally unique generation. Memo tables use this as a cache key.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn touch(&mut self) {
        self.generation = next_generation();
    }

    /// Do two environments hold exactly the same facts?
    ///
    /// Compares the *semantic* fields only — the stored types, aliases,
    /// negative facts, theory literals, disjunctions, pending atoms,
    /// mutability set and absurdity flag. The `generation`/`lin_epoch`
    /// identity stamps are deliberately ignored: they key memo tables,
    /// so two value-equal environments with different stamps behave
    /// identically in every judgment (at worst a cache miss recomputes
    /// the same verdict). The incremental module driver uses this as its
    /// splice guard: a cached item verdict may be replayed exactly when
    /// the environment it would be re-checked in holds the same facts as
    /// the one it was recorded under.
    ///
    /// Every `Arc`-shared field gets a pointer-equality fast path, so
    /// comparing an environment against the snapshot it was cloned from
    /// is `O(fields)`.
    pub fn same_contents(&self, other: &Env) -> bool {
        fn arc_eq<T: PartialEq + ?Sized>(a: &Arc<T>, b: &Arc<T>) -> bool {
            Arc::ptr_eq(a, b) || **a == **b
        }
        (self.generation == other.generation)
            || (self.absurd == other.absurd
                && self.types.same_entries(&other.types)
                && self.aliases.same_entries(&other.aliases)
                && arc_eq(&self.negs, &other.negs)
                && arc_eq(&self.disjs, &other.disjs)
                && arc_eq(&self.lin_facts, &other.lin_facts)
                && arc_eq(&self.bv_facts, &other.bv_facts)
                && arc_eq(&self.str_facts, &other.str_facts)
                && arc_eq(&self.pending, &other.pending)
                && arc_eq(&self.mutables, &other.mutables))
    }

    /// Marks `x` as mutable (no symbolic object, §4.2).
    pub fn mark_mutable(&mut self, x: Symbol) {
        self.touch();
        Arc::make_mut(&mut self.mutables).insert(x);
    }

    /// Is `x` mutable?
    pub fn is_mutable(&self, x: Symbol) -> bool {
        self.mutables.contains(&x)
    }

    /// Records that the environment is contradictory.
    pub fn mark_absurd(&mut self) {
        if self.absurd {
            return;
        }
        self.touch();
        self.absurd = true;
    }

    /// Has `ff` been assumed (directly or via a detected contradiction)?
    pub fn is_absurd(&self) -> bool {
        self.absurd
    }

    /// Adds an eager alias `x ↦ o`. The caller must ensure `o` does not
    /// (transitively) mention `x`; aliases are only created for freshly
    /// bound variables, which guarantees acyclicity.
    pub fn add_alias(&mut self, x: Symbol, o: Obj) {
        let id = ObjId::of(&o);
        debug_assert!(!id.mentions_var(x));
        self.touch();
        self.aliases.insert(x, id);
    }

    /// Forgets everything recorded about `x`: its type, aliases from or
    /// through it, negative facts, theory literals and disjunctions that
    /// mention it, and any embedded reference from other bindings' types.
    /// Used when a binder *shadows* an existing variable — the facts about
    /// the outer `x` must not leak onto the inner one. Dropping facts is
    /// always sound (it only weakens the environment).
    ///
    /// The interner's per-id variable-mention metadata makes this cheap:
    /// instead of walking and rewriting every binding's type tree, the
    /// scan is an id-set filter, and in the common case — nothing else
    /// mentions `x` — unbinding is a pure map remove.
    pub fn unbind(&mut self, x: Symbol) {
        use crate::intern::{objs_mentioning, props_mentioning, tys_mentioning};
        self.touch();
        #[cfg(feature = "stats")]
        stats::UNBIND_TOTAL.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "stats")]
        let mut pure_remove = true;
        self.types.remove(x);
        // Rewrite only bindings whose type actually mentions `x` (the
        // cached mention set over-approximates, so a miss is a proof of
        // absence and skipping the substitution is exact). Mention checks
        // are batched: one interner lock per store, not one per id —
        // parallel corpus workers would otherwise contend on the global
        // interner mutex for every shadowing binder.
        let entries: Vec<(Symbol, TyId)> = self.types.iter().map(|(y, t)| (y, *t)).collect();
        let flags = tys_mentioning(x, entries.iter().map(|(_, t)| *t));
        for (&(y, t), &dirty) in entries.iter().zip(&flags) {
            if !dirty {
                continue;
            }
            #[cfg(feature = "stats")]
            {
                pure_remove = false;
            }
            let rewritten = TyId::of(&t.get().subst_obj(x, &Obj::Null));
            self.types.insert(y, rewritten);
        }
        self.aliases.remove(x);
        let aliases: Vec<(Symbol, ObjId)> = self.aliases.iter().map(|(y, o)| (y, *o)).collect();
        let flags = objs_mentioning(x, aliases.iter().map(|(_, o)| *o));
        for (&(y, _), &dirty) in aliases.iter().zip(&flags) {
            if !dirty {
                continue;
            }
            #[cfg(feature = "stats")]
            {
                pure_remove = false;
            }
            self.aliases.remove(y);
        }
        let neg_ids: Vec<TyId> = self.negs.values().flatten().copied().collect();
        let neg_dirty: std::collections::HashSet<TyId> = tys_mentioning(x, neg_ids.iter().copied())
            .into_iter()
            .zip(neg_ids)
            .filter_map(|(dirty, id)| dirty.then_some(id))
            .collect();
        if !neg_dirty.is_empty() || self.negs.keys().any(|p| p.base == x) {
            #[cfg(feature = "stats")]
            {
                pure_remove = false;
            }
            let negs = Arc::make_mut(&mut self.negs);
            negs.retain(|p, _| p.base != x);
            for ts in negs.values_mut() {
                for t in ts.iter_mut() {
                    if neg_dirty.contains(t) {
                        *t = TyId::of(&t.get().subst_obj(x, &Obj::Null));
                    }
                }
            }
        }
        let disj_flags = props_mentioning(x, self.disjs.iter().flat_map(|&(p, q)| [p, q]));
        if disj_flags.iter().any(|&d| d) {
            #[cfg(feature = "stats")]
            {
                pure_remove = false;
            }
            let disjs = Arc::make_mut(&mut self.disjs);
            let mut keep = disj_flags.chunks(2).map(|c| !c[0] && !c[1]);
            disjs.retain(|_| keep.next().expect("one flag pair per disjunction"));
        }
        if self.lin_facts.iter().any(|a| a.mentions_var(x)) {
            #[cfg(feature = "stats")]
            {
                pure_remove = false;
            }
            Arc::make_mut(&mut self.lin_facts).retain(|a| !a.mentions_var(x));
            // Not an append: incremental solver states can't extend this.
            self.lin_epoch = if self.lin_facts.is_empty() {
                0
            } else {
                next_lin_epoch()
            };
            self.lin_parent = None;
        }
        if self.bv_facts.iter().any(|a| a.mentions_var(x)) {
            #[cfg(feature = "stats")]
            {
                pure_remove = false;
            }
            Arc::make_mut(&mut self.bv_facts).retain(|a| !a.mentions_var(x));
        }
        if self.str_facts.iter().any(|a| a.mentions_var(x)) {
            #[cfg(feature = "stats")]
            {
                pure_remove = false;
            }
            Arc::make_mut(&mut self.str_facts).retain(|a| !a.mentions_var(x));
        }
        if self.pending.iter().any(|(p, _, _)| p.base == x) {
            #[cfg(feature = "stats")]
            {
                pure_remove = false;
            }
            Arc::make_mut(&mut self.pending).retain(|(p, _, _)| p.base != x);
        }
        #[cfg(feature = "stats")]
        if pure_remove {
            stats::UNBIND_FAST.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Resolves an object to its representative by applying aliases to a
    /// fixpoint. Allocation-free until a substitution is actually needed:
    /// each round finds one aliased variable by direct walk
    /// ([`Obj::find_var`]) instead of materializing a free-variable set.
    pub fn resolve(&self, o: &Obj) -> Obj {
        if self.aliases.is_empty() {
            return o.clone();
        }
        let mut aliased = |x: Symbol| self.aliases.contains_key(x);
        if o.find_var(&mut aliased).is_none() {
            return o.clone();
        }
        let mut cur = o.clone();
        for _ in 0..64 {
            let Some(x) = cur.find_var(&mut |x| self.aliases.contains_key(x)) else {
                return cur;
            };
            let rep = self.aliases.get(x).expect("checked").get();
            cur = cur.subst(x, &rep);
        }
        cur
    }

    /// The interned id of the recorded type of variable `x`, if any.
    /// This is the judgment layer's native read — no tree is touched.
    pub fn raw_ty_id(&self, x: Symbol) -> Option<TyId> {
        self.types.get(x).copied()
    }

    /// The raw recorded type of variable `x`, if any (canonical tree).
    pub fn raw_ty(&self, x: Symbol) -> Option<Arc<Ty>> {
        self.raw_ty_id(x).map(TyId::get)
    }

    /// Overwrites the recorded type of `x` by id.
    ///
    /// Writing back an unchanged type is a no-op — `update±` frequently
    /// returns its input (e.g. `len`-field updates never refine the type
    /// structure), and with interned storage that check is one integer
    /// compare. Skipping the write keeps the generation (and with it
    /// every memoized verdict about this environment) alive.
    pub fn set_ty_id(&mut self, x: Symbol, t: TyId) {
        if self.types.get(x) == Some(&t) {
            return;
        }
        self.touch();
        self.types.insert(x, t);
    }

    /// Overwrites the recorded type of `x` (tree convenience wrapper; the
    /// judgments use [`Env::set_ty_id`]).
    pub fn set_ty(&mut self, x: Symbol, t: Ty) {
        self.set_ty_id(x, TyId::of(&t));
    }

    /// Is `x` bound (has a recorded type or an alias)?
    pub fn is_bound(&self, x: Symbol) -> bool {
        self.types.contains_key(x) || self.aliases.contains_key(x)
    }

    /// Records a negative type fact for `path` (duplicates dropped).
    pub fn add_neg(&mut self, path: Path, t: TyId) {
        if self.negs.get(&path).is_some_and(|ts| ts.contains(&t)) {
            return;
        }
        self.touch();
        Arc::make_mut(&mut self.negs)
            .entry(path)
            .or_default()
            .push(t);
    }

    /// The negative facts recorded for `path`.
    pub fn negs_of(&self, path: &Path) -> &[TyId] {
        self.negs.get(path).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(path, negated type ids)` entries.
    pub fn negs(&self) -> impl Iterator<Item = (&Path, &[TyId])> {
        self.negs.iter().map(|(p, ts)| (p, ts.as_slice()))
    }

    /// All `(variable, positive type id)` entries.
    pub fn types(&self) -> impl Iterator<Item = (Symbol, TyId)> + '_ {
        self.types.iter().map(|(x, t)| (x, *t))
    }

    /// Stores an (interned) disjunction for later case splitting.
    /// Duplicates are dropped: re-proving the same disjunction adds no
    /// information and every copy multiplies the case-split search.
    pub fn add_disj(&mut self, lhs: PropId, rhs: PropId) {
        if self.disjs.contains(&(lhs, rhs)) {
            return;
        }
        self.touch();
        Arc::make_mut(&mut self.disjs).push((lhs, rhs));
    }

    /// The stored disjunctions.
    pub fn disjs(&self) -> &[(PropId, PropId)] {
        &self.disjs
    }

    /// Removes and returns the `i`-th stored disjunction.
    pub fn take_disj(&mut self, i: usize) -> (PropId, PropId) {
        self.touch();
        Arc::make_mut(&mut self.disjs).swap_remove(i)
    }

    /// Appends a linear-arithmetic fact (duplicates are dropped — they
    /// only widen every later solver translation).
    pub fn add_lin_fact(&mut self, a: LinAtom) {
        if self.lin_facts.contains(&a) {
            return;
        }
        self.touch();
        self.lin_parent = Some(self.lin_epoch);
        self.lin_epoch = next_lin_epoch();
        Arc::make_mut(&mut self.lin_facts).push(a);
    }

    /// The accumulated linear facts.
    pub fn lin_facts(&self) -> &[LinAtom] {
        &self.lin_facts
    }

    /// The linear store's content stamp (0 = empty store); see the field
    /// docs. Solver caches key incremental elimination states on this.
    pub fn lin_epoch(&self) -> u64 {
        self.lin_epoch
    }

    /// The epoch this store extends by appended facts, if any.
    pub fn lin_parent(&self) -> Option<u64> {
        self.lin_parent
    }

    /// Appends a bitvector fact.
    pub fn add_bv_fact(&mut self, a: BvAtomProp) {
        self.touch();
        Arc::make_mut(&mut self.bv_facts).push(a);
    }

    /// The accumulated bitvector facts.
    pub fn bv_facts(&self) -> &[BvAtomProp] {
        &self.bv_facts
    }

    /// Appends a regex-membership fact.
    pub fn add_str_fact(&mut self, a: StrAtomProp) {
        self.touch();
        Arc::make_mut(&mut self.str_facts).push(a);
    }

    /// The accumulated regex-membership facts.
    pub fn str_facts(&self) -> &[StrAtomProp] {
        &self.str_facts
    }

    /// Defers a type atom for query-time replay (pure-proposition mode).
    pub fn add_pending(&mut self, p: Path, t: TyId, positive: bool) {
        self.touch();
        Arc::make_mut(&mut self.pending).push((p, t, positive));
    }

    /// The deferred type atoms, in assumption order.
    pub fn pending(&self) -> &[(Path, TyId, bool)] {
        &self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn alias_resolution_reaches_fixpoint() {
        let mut env = Env::new();
        // x ↦ y + 1, y ↦ z
        env.add_alias(s("res_x"), Obj::var(s("res_y")).add(&Obj::int(1)));
        env.add_alias(s("res_y"), Obj::var(s("res_z")));
        let got = env.resolve(&Obj::var(s("res_x")));
        assert_eq!(got, Obj::var(s("res_z")).add(&Obj::int(1)));
    }

    #[test]
    fn resolve_is_identity_without_aliases() {
        let env = Env::new();
        let o = Obj::var(s("plain")).len();
        assert_eq!(env.resolve(&o), o);
    }

    #[test]
    fn mutability_flag() {
        let mut env = Env::new();
        assert!(!env.is_mutable(s("m")));
        env.mark_mutable(s("m"));
        assert!(env.is_mutable(s("m")));
    }

    #[test]
    fn negs_round_trip() {
        let mut env = Env::new();
        let p = Path::var(s("n"));
        env.add_neg(p.clone(), TyId::of(&Ty::Int));
        assert_eq!(env.negs_of(&p), &[TyId::of(&Ty::Int)]);
        assert!(env.negs_of(&Path::var(s("other"))).is_empty());
    }

    #[test]
    fn clones_are_cheap_snapshots() {
        let mut env = Env::new();
        env.set_ty(s("snap"), Ty::Int);
        let snapshot = env.clone();
        assert_eq!(snapshot.generation(), env.generation());
        // Mutating the clone neither disturbs the original nor keeps the
        // old generation.
        let mut fork = snapshot.clone();
        fork.set_ty(s("snap"), Ty::bool_ty());
        assert_eq!(env.raw_ty(s("snap")).as_deref(), Some(&Ty::Int));
        assert_eq!(fork.raw_ty(s("snap")).as_deref(), Some(&Ty::bool_ty()));
        assert_ne!(fork.generation(), env.generation());
    }

    #[test]
    fn empty_environments_share_generation_zero() {
        assert_eq!(Env::new().generation(), 0);
        assert_eq!(Env::default().generation(), 0);
        let mut env = Env::new();
        env.mark_mutable(s("gen_bump"));
        assert_ne!(env.generation(), 0);
    }

    #[test]
    fn same_contents_ignores_identity_stamps() {
        let mut a = Env::new();
        a.set_ty(s("sc_x"), Ty::Int);
        a.mark_mutable(s("sc_m"));
        let mut b = Env::new();
        b.mark_mutable(s("sc_m"));
        b.set_ty(s("sc_x"), Ty::Int);
        // Different generations (each mutation stamps a fresh one), same
        // facts.
        assert_ne!(a.generation(), b.generation());
        assert!(a.same_contents(&b));
        assert!(a.same_contents(&a.clone()), "snapshot fast path");
        b.set_ty(s("sc_x"), Ty::bool_ty());
        assert!(!a.same_contents(&b));
        b.set_ty(s("sc_x"), Ty::Int);
        assert!(a.same_contents(&b));
        b.mark_absurd();
        assert!(!a.same_contents(&b));
    }

    #[test]
    fn unbind_is_a_pure_remove_when_nothing_mentions_x() {
        let mut env = Env::new();
        env.set_ty(s("ub_x"), Ty::Int);
        env.set_ty(s("ub_y"), Ty::bool_ty());
        env.unbind(s("ub_x"));
        assert!(env.raw_ty_id(s("ub_x")).is_none());
        assert_eq!(env.raw_ty(s("ub_y")).as_deref(), Some(&Ty::bool_ty()));
    }

    #[test]
    fn unbind_rewrites_types_that_mention_x() {
        use crate::syntax::{LinCmp, Prop};
        let mut env = Env::new();
        let x = s("ub2_x");
        let y = s("ub2_y");
        let v = s("ub2_v");
        env.set_ty(x, Ty::Int);
        // y : {v:Int | v ≤ x} — mentions x, must be rewritten on unbind.
        env.set_ty(
            y,
            Ty::refine(v, Ty::Int, Prop::lin(Obj::var(v), LinCmp::Le, Obj::var(x))),
        );
        env.unbind(x);
        let yt = env.raw_ty(y).expect("y still bound");
        let mut fv = HashSet::new();
        yt.free_obj_vars(&mut fv);
        assert!(!fv.contains(&x), "unbind left a reference to x in {yt}");
    }

    #[test]
    fn unbind_drops_aliases_and_facts_mentioning_x() {
        use crate::syntax::{LinCmp, Prop};
        let mut env = Env::new();
        let x = s("ub3_x");
        let y = s("ub3_y");
        env.set_ty(x, Ty::Int);
        env.add_alias(y, Obj::var(x).add(&Obj::int(1)));
        if let Prop::Lin(a) = Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(3)) {
            env.add_lin_fact(a);
        }
        env.add_disj(
            PropId::of(&Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(1))),
            PropId::of(&Prop::lin(Obj::int(1), LinCmp::Le, Obj::var(x))),
        );
        env.unbind(x);
        assert!(env.lin_facts().is_empty());
        assert!(env.disjs().is_empty());
        assert_eq!(env.resolve(&Obj::var(y)), Obj::var(y), "alias must be gone");
    }
}
