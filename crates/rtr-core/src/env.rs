//! The hybrid type-checking environment (§4.1).
//!
//! The formal model's environment is a bag of propositions; the paper
//! notes that a real implementation should split it into (a) a standard
//! mapping from objects to known positive/negative type information —
//! iteratively refined with the `update` metafunction — and (b) the set of
//! remaining compound propositions. This module implements that split,
//! together with the *representative objects* optimization: aliases
//! (`x ≡ o`) are applied eagerly, so every stored fact speaks about a
//! canonical representative.
//!
//! `Env` is pure data; the judgments that manipulate it (assumption,
//! proving, subtyping, update) live on [`crate::check::Checker`].

use std::collections::{HashMap, HashSet};

use crate::syntax::{BvAtomProp, LinAtom, Obj, Path, Prop, StrAtomProp, Symbol, Ty};

/// A type-checking environment Γ.
#[derive(Clone, Debug, Default)]
pub struct Env {
    /// Eager alias substitutions: `x ↦ o` (representative objects, §4.1).
    aliases: HashMap<Symbol, Obj>,
    /// Positive type information per variable, refined via `update`.
    types: HashMap<Symbol, Ty>,
    /// Negative type information per path (`o ∉ τ` facts).
    negs: HashMap<Path, Vec<Ty>>,
    /// Remaining compound propositions (disjunctions), case-split on
    /// demand at proof time.
    disjs: Vec<(Prop, Prop)>,
    /// Linear-arithmetic theory literals.
    lin_facts: Vec<LinAtom>,
    /// Bitvector theory literals.
    bv_facts: Vec<BvAtomProp>,
    /// Regex theory literals.
    str_facts: Vec<StrAtomProp>,
    /// Deferred type atoms `(path, τ, positive)` — only populated in the
    /// pure-proposition-environment ablation (`hybrid_env = false`),
    /// where they are replayed through `update±` at query time instead of
    /// refining the stored types eagerly.
    pending: Vec<(Path, Ty, bool)>,
    /// Variables the mutation analysis flagged (§4.2); they never get
    /// symbolic objects and runtime tests on them teach the system
    /// nothing.
    mutables: HashSet<Symbol>,
    /// Set when `ff` (or a contradiction) has been assumed.
    absurd: bool,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Marks `x` as mutable (no symbolic object, §4.2).
    pub fn mark_mutable(&mut self, x: Symbol) {
        self.mutables.insert(x);
    }

    /// Is `x` mutable?
    pub fn is_mutable(&self, x: Symbol) -> bool {
        self.mutables.contains(&x)
    }

    /// Records that the environment is contradictory.
    pub fn mark_absurd(&mut self) {
        self.absurd = true;
    }

    /// Has `ff` been assumed (directly or via a detected contradiction)?
    pub fn is_absurd(&self) -> bool {
        self.absurd
    }

    /// Adds an eager alias `x ↦ o`. The caller must ensure `o` does not
    /// (transitively) mention `x`; aliases are only created for freshly
    /// bound variables, which guarantees acyclicity.
    pub fn add_alias(&mut self, x: Symbol, o: Obj) {
        debug_assert!({
            let mut fv = HashSet::new();
            o.free_vars(&mut fv);
            !fv.contains(&x)
        });
        self.aliases.insert(x, o);
    }

    /// Forgets everything recorded about `x`: its type, aliases from or
    /// through it, negative facts, theory literals and disjunctions that
    /// mention it, and any embedded reference from other bindings' types.
    /// Used when a binder *shadows* an existing variable — the facts about
    /// the outer `x` must not leak onto the inner one. Dropping facts is
    /// always sound (it only weakens the environment).
    pub fn unbind(&mut self, x: Symbol) {
        let mentions_obj = |o: &Obj| {
            let mut fv = HashSet::new();
            o.free_vars(&mut fv);
            fv.contains(&x)
        };
        self.types.remove(&x);
        self.aliases.remove(&x);
        self.aliases.retain(|_, o| !mentions_obj(o));
        self.negs.retain(|p, _| p.base != x);
        for ts in self.negs.values_mut() {
            for t in ts.iter_mut() {
                *t = t.subst_obj(x, &Obj::Null);
            }
        }
        for t in self.types.values_mut() {
            *t = t.subst_obj(x, &Obj::Null);
        }
        let mentions_prop = |p: &Prop| {
            let mut fv = HashSet::new();
            p.free_vars(&mut fv);
            fv.contains(&x)
        };
        self.disjs
            .retain(|(p, q)| !mentions_prop(p) && !mentions_prop(q));
        self.lin_facts
            .retain(|a| !mentions_prop(&Prop::Lin(a.clone())));
        self.bv_facts
            .retain(|a| !mentions_prop(&Prop::Bv(a.clone())));
        self.str_facts
            .retain(|a| !mentions_prop(&Prop::Str(a.clone())));
        self.pending.retain(|(p, t, _)| {
            if p.base == x {
                return false;
            }
            let mut fv = HashSet::new();
            Prop::is(Obj::Path(p.clone()), t.clone()).free_vars(&mut fv);
            !fv.contains(&x)
        });
    }

    /// Resolves an object to its representative by applying aliases to a
    /// fixpoint.
    pub fn resolve(&self, o: &Obj) -> Obj {
        let mut cur = o.clone();
        for _ in 0..64 {
            let mut fv = HashSet::new();
            cur.free_vars(&mut fv);
            let Some(&x) = fv.iter().find(|x| self.aliases.contains_key(x)) else {
                return cur;
            };
            cur = cur.subst(x, &self.aliases[&x]);
        }
        cur
    }

    /// The raw recorded type of variable `x`, if any.
    pub fn raw_ty(&self, x: Symbol) -> Option<&Ty> {
        self.types.get(&x)
    }

    /// Overwrites the recorded type of `x`.
    pub fn set_ty(&mut self, x: Symbol, t: Ty) {
        self.types.insert(x, t);
    }

    /// Is `x` bound (has a recorded type or an alias)?
    pub fn is_bound(&self, x: Symbol) -> bool {
        self.types.contains_key(&x) || self.aliases.contains_key(&x)
    }

    /// Records a negative type fact for `path`.
    pub fn add_neg(&mut self, path: Path, t: Ty) {
        self.negs.entry(path).or_default().push(t);
    }

    /// The negative facts recorded for `path`.
    pub fn negs_of(&self, path: &Path) -> &[Ty] {
        self.negs.get(path).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(path, negated types)` entries.
    pub fn negs(&self) -> impl Iterator<Item = (&Path, &[Ty])> {
        self.negs.iter().map(|(p, ts)| (p, ts.as_slice()))
    }

    /// All `(variable, positive type)` entries.
    pub fn types(&self) -> impl Iterator<Item = (Symbol, &Ty)> {
        self.types.iter().map(|(&x, t)| (x, t))
    }

    /// Stores a disjunction for later case splitting.
    pub fn add_disj(&mut self, lhs: Prop, rhs: Prop) {
        self.disjs.push((lhs, rhs));
    }

    /// The stored disjunctions.
    pub fn disjs(&self) -> &[(Prop, Prop)] {
        &self.disjs
    }

    /// Removes and returns the `i`-th stored disjunction.
    pub fn take_disj(&mut self, i: usize) -> (Prop, Prop) {
        self.disjs.swap_remove(i)
    }

    /// Appends a linear-arithmetic fact.
    pub fn add_lin_fact(&mut self, a: LinAtom) {
        self.lin_facts.push(a);
    }

    /// The accumulated linear facts.
    pub fn lin_facts(&self) -> &[LinAtom] {
        &self.lin_facts
    }

    /// Appends a bitvector fact.
    pub fn add_bv_fact(&mut self, a: BvAtomProp) {
        self.bv_facts.push(a);
    }

    /// The accumulated bitvector facts.
    pub fn bv_facts(&self) -> &[BvAtomProp] {
        &self.bv_facts
    }

    /// Appends a regex-membership fact.
    pub fn add_str_fact(&mut self, a: StrAtomProp) {
        self.str_facts.push(a);
    }

    /// The accumulated regex-membership facts.
    pub fn str_facts(&self) -> &[StrAtomProp] {
        &self.str_facts
    }

    /// Defers a type atom for query-time replay (pure-proposition mode).
    pub fn add_pending(&mut self, p: Path, t: Ty, positive: bool) {
        self.pending.push((p, t, positive));
    }

    /// The deferred type atoms, in assumption order.
    pub fn pending(&self) -> &[(Path, Ty, bool)] {
        &self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn alias_resolution_reaches_fixpoint() {
        let mut env = Env::new();
        // x ↦ y + 1, y ↦ z
        env.add_alias(s("res_x"), Obj::var(s("res_y")).add(&Obj::int(1)));
        env.add_alias(s("res_y"), Obj::var(s("res_z")));
        let got = env.resolve(&Obj::var(s("res_x")));
        assert_eq!(got, Obj::var(s("res_z")).add(&Obj::int(1)));
    }

    #[test]
    fn resolve_is_identity_without_aliases() {
        let env = Env::new();
        let o = Obj::var(s("plain")).len();
        assert_eq!(env.resolve(&o), o);
    }

    #[test]
    fn mutability_flag() {
        let mut env = Env::new();
        assert!(!env.is_mutable(s("m")));
        env.mark_mutable(s("m"));
        assert!(env.is_mutable(s("m")));
    }

    #[test]
    fn negs_round_trip() {
        let mut env = Env::new();
        let p = Path::var(s("n"));
        env.add_neg(p.clone(), Ty::Int);
        assert_eq!(env.negs_of(&p), &[Ty::Int]);
        assert!(env.negs_of(&Path::var(s("other"))).is_empty());
    }
}
