//! Structured, located diagnostics — the checker's public error shape.
//!
//! The §5 case study runs the checker over whole libraries and needs to
//! classify *every* check site, so the public API is diagnostics-first:
//! instead of a single stringly-typed `Err`, checking produces a list of
//! [`Diagnostic`]s, each carrying
//!
//! * a stable machine-readable [`Code`] (`E0xxx`),
//! * a [`Severity`],
//! * a primary [`Span`] into the original surface source (resolved
//!   through the [`SpanTable`] the elaborator builds, including
//!   synthesized-from provenance for macro-expanded code),
//! * secondary [`Label`]s,
//! * a structured [`Payload`] (expected/got as shared type trees, the
//!   refinement proposition that failed, and the solver theories it
//!   mentions), and
//! * free-form notes.
//!
//! [`render`] turns a diagnostic into the human format (source snippet
//! with caret underlines); machine consumers read the fields directly or
//! use the facade's JSON emitter.

use std::fmt;
use std::sync::Arc;

use crate::budget::LimitKind;
use crate::intern::{PropId, TyId, THEORY_BV, THEORY_LIN, THEORY_STR};
use crate::syntax::{Prop, Symbol, Ty};

// ---------------------------------------------------------------------------
// Source locations
// ---------------------------------------------------------------------------

/// A source location (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Loc {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open source region: `start` is the first character of the form,
/// `end` the position just past its last character.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Where the region starts.
    pub start: Loc,
    /// Just past where it ends.
    pub end: Loc,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: Loc, end: Loc) -> Span {
        Span { start, end }
    }

    /// A zero-width span at a single location.
    pub fn point(at: Loc) -> Span {
        Span { start: at, end: at }
    }
}

impl From<Loc> for Span {
    fn from(at: Loc) -> Span {
        Span::point(at)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

// ---------------------------------------------------------------------------
// Line index: byte offsets ⇄ Locs ⇄ UTF-16 positions
// ---------------------------------------------------------------------------

/// A position in the UTF-16 code-unit coordinate system the Language
/// Server Protocol mandates: 0-based line, 0-based column counted in
/// UTF-16 code units (an astral-plane character is *two* units).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Utf16Pos {
    /// 0-based line.
    pub line: u32,
    /// 0-based UTF-16 code-unit offset within the line.
    pub character: u32,
}

/// Precomputed line starts for one source text, supporting conversions
/// between the three position systems in play:
///
/// * **byte offsets** — what [`crate::incremental`]'s textual slicing and
///   the incremental form scanner use,
/// * **[`Loc`]s** — the reader's 1-based line / 1-based *character*
///   columns carried by every [`Span`], and
/// * **[`Utf16Pos`]** — the 0-based UTF-16 positions LSP clients speak.
///
/// The index stores only line-start byte offsets; conversions re-walk the
/// one line involved, so building it is a single O(n) pass and the index
/// stays valid as long as the text it was built from is unchanged.
///
/// All conversions clamp out-of-range inputs to the nearest valid
/// position (end of line, end of text), per the LSP specification's
/// lenient position handling, and byte offsets landing inside a UTF-8
/// sequence round down to the character boundary.
#[derive(Clone, Debug)]
pub struct LineIndex {
    /// Byte offset of the start of each line; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    /// Total text length in bytes.
    len: u32,
}

impl LineIndex {
    /// Build the index for `text`. Lines are separated by `\n` (a `\r\n`
    /// sequence therefore leaves the `\r` at the end of the prior line,
    /// matching the reader's column accounting).
    pub fn new(text: &str) -> LineIndex {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineIndex {
            line_starts,
            len: text.len() as u32,
        }
    }

    /// Number of lines (always ≥ 1; an empty text has one empty line).
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }

    /// The byte range of 0-based line `line` (exclusive of its `\n`),
    /// clamped to the last line if out of range.
    fn line_bytes(&self, line: u32) -> (u32, u32) {
        let line = (line as usize).min(self.line_starts.len() - 1);
        let start = self.line_starts[line];
        let end = match self.line_starts.get(line + 1) {
            Some(&next) => next - 1,
            None => self.len,
        };
        (start, end)
    }

    /// 0-based line containing byte offset `byte` (clamped to the text).
    fn line_of_byte(&self, byte: u32) -> u32 {
        let byte = byte.min(self.len);
        match self.line_starts.binary_search(&byte) {
            Ok(i) => i as u32,
            Err(i) => (i - 1) as u32,
        }
    }

    /// Convert a byte offset into the reader's 1-based [`Loc`]. Offsets
    /// past the end clamp to the end of text; offsets inside a UTF-8
    /// sequence round down to the character they fall in.
    pub fn byte_to_loc(&self, text: &str, byte: u32) -> Loc {
        let byte = byte.min(self.len);
        let line = self.line_of_byte(byte);
        let (start, end) = self.line_bytes(line);
        let target = byte.min(end);
        let mut col = 1u32;
        for (off, ch) in text[start as usize..end as usize].char_indices() {
            if start + off as u32 + ch.len_utf8() as u32 <= target {
                col += 1;
            } else {
                break;
            }
        }
        Loc {
            line: line + 1,
            col,
        }
    }

    /// Convert a 1-based [`Loc`] into a byte offset, clamping columns
    /// past the end of the line to just past its last character.
    pub fn loc_to_byte(&self, text: &str, loc: Loc) -> u32 {
        let line = loc.line.saturating_sub(1);
        let (start, end) = self.line_bytes(line);
        let mut remaining = loc.col.saturating_sub(1);
        for (off, _) in text[start as usize..end as usize].char_indices() {
            if remaining == 0 {
                return start + off as u32;
            }
            remaining -= 1;
        }
        end
    }

    /// Convert a 1-based, character-counted [`Loc`] into a 0-based
    /// UTF-16 position. Columns past the end of the line clamp to the
    /// line end.
    pub fn loc_to_utf16(&self, text: &str, loc: Loc) -> Utf16Pos {
        let line = loc.line.saturating_sub(1).min(self.line_count() - 1);
        let (start, end) = self.line_bytes(line);
        let mut remaining = loc.col.saturating_sub(1);
        let mut units = 0u32;
        for ch in text[start as usize..end as usize].chars() {
            if remaining == 0 {
                break;
            }
            remaining -= 1;
            units += ch.len_utf16() as u32;
        }
        Utf16Pos {
            line,
            character: units,
        }
    }

    /// Convert a 0-based UTF-16 position into a 1-based [`Loc`]. A
    /// `character` landing between the two units of a surrogate pair
    /// resolves to the character containing it; positions past the line
    /// end clamp to just past its last character.
    pub fn utf16_to_loc(&self, text: &str, pos: Utf16Pos) -> Loc {
        let line = pos.line.min(self.line_count() - 1);
        let (start, end) = self.line_bytes(line);
        let mut units = 0u32;
        let mut col = 1u32;
        for ch in text[start as usize..end as usize].chars() {
            let w = ch.len_utf16() as u32;
            if units + w <= pos.character {
                units += w;
                col += 1;
            } else {
                break;
            }
        }
        Loc {
            line: line + 1,
            col,
        }
    }

    /// Convert a 0-based UTF-16 position into a byte offset.
    pub fn utf16_to_byte(&self, text: &str, pos: Utf16Pos) -> u32 {
        self.loc_to_byte(text, self.utf16_to_loc(text, pos))
    }

    /// Convert a byte offset into a 0-based UTF-16 position.
    pub fn byte_to_utf16(&self, text: &str, byte: u32) -> Utf16Pos {
        self.loc_to_utf16(text, self.byte_to_loc(text, byte))
    }

    /// Convert a [`Span`] (1-based, character columns) into a pair of
    /// UTF-16 positions `(start, end)`.
    pub fn span_to_utf16(&self, text: &str, span: Span) -> (Utf16Pos, Utf16Pos) {
        (
            self.loc_to_utf16(text, span.start),
            self.loc_to_utf16(text, span.end),
        )
    }
}

// ---------------------------------------------------------------------------
// The span table
// ---------------------------------------------------------------------------

/// An index into a [`SpanTable`]: identifies one elaborated expression
/// node. The elaborator wraps every expression it produces in
/// [`crate::syntax::Expr::Spanned`], and errors bubbling out of the
/// checker pick up the nearest enclosing node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// The raw table index.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

#[derive(Clone, Copy, Debug)]
struct SpanEntry {
    span: Span,
    /// For code synthesized by macro expansion: the surface node the
    /// macro use occupies. `None` for ordinary surface spans.
    expanded_from: Option<NodeId>,
}

/// Spans for every elaborated expression node, keyed by [`NodeId`].
///
/// Macro-synthesized nodes (the `letrec` skeleton `for/sum` leaves
/// behind, a named `let`'s application, …) record *synthesized-from*
/// provenance: their span is the macro use site and
/// [`SpanTable::expansion_of`] reports which surface node they were
/// expanded from, so diagnostics inside an expansion still point into
/// the original source.
#[derive(Clone, Debug, Default)]
pub struct SpanTable {
    entries: Vec<SpanEntry>,
}

impl SpanTable {
    /// An empty table.
    pub fn new() -> SpanTable {
        SpanTable::default()
    }

    /// Records a surface span, returning its node.
    pub fn insert(&mut self, span: Span) -> NodeId {
        let id = NodeId(self.entries.len() as u32);
        self.entries.push(SpanEntry {
            span,
            expanded_from: None,
        });
        id
    }

    /// Records a node synthesized by macro expansion from the surface
    /// node `from` (the span is the macro use site's).
    pub fn insert_synthesized(&mut self, from: NodeId) -> NodeId {
        let span = self.get(from);
        let id = NodeId(self.entries.len() as u32);
        self.entries.push(SpanEntry {
            span,
            expanded_from: Some(from),
        });
        id
    }

    /// The span recorded for `node`.
    pub fn get(&self, node: NodeId) -> Span {
        self.entries[node.0 as usize].span
    }

    /// If `node` was synthesized by macro expansion, the surface node it
    /// was expanded from.
    pub fn expansion_of(&self, node: NodeId) -> Option<NodeId> {
        self.entries[node.0 as usize].expanded_from
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Codes and severities
// ---------------------------------------------------------------------------

/// A stable, machine-readable diagnostic code.
///
/// Codes are part of the public JSON schema: `E`-codes are errors,
/// `W`-codes warnings. New codes may be added, but existing codes keep
/// their meaning.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Code {
    /// `E0001` — a variable was referenced but never bound.
    UnboundVariable,
    /// `E0002` — an expression's type is not a subtype of the required
    /// type (including refinements a theory could not discharge).
    TypeMismatch,
    /// `E0003` — a non-function was applied.
    NotAFunction,
    /// `E0004` — wrong number of arguments or parameters.
    ArityMismatch,
    /// `E0005` — `fst`/`snd` applied to a non-pair.
    NotAPair,
    /// `E0006` — local type inference could not instantiate a
    /// polymorphic operator.
    CannotInfer,
    /// `E0007` — `set!` of an ill-typed value.
    InvalidAssignment,
    /// `E0101` — lexical (reader) error.
    ReadError,
    /// `E0102` — syntax (elaboration) error.
    SyntaxError,
    /// `E0201` — runtime failure (evaluator error surfaced through a
    /// diagnostic-consuming driver).
    RuntimeError,
    /// `E0202` — a resource-governance limit (steps, deadline, depth,
    /// or an injected fault) tripped while checking this item; the
    /// verdict is a *conservative degradation*, not a proof that the
    /// item is ill-typed. See [`crate::budget`].
    ResourceExhausted,
    /// `E0203` — an internal checker error (a panic) was isolated to
    /// this item; the rest of the module was checked normally. Always a
    /// bug in the checker, never in the checked program.
    InternalError,
    /// `W0001` — a `(: name T)` signature with no matching `define`.
    UnusedSignature,
}

impl Code {
    /// The stable code string (`"E0002"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnboundVariable => "E0001",
            Code::TypeMismatch => "E0002",
            Code::NotAFunction => "E0003",
            Code::ArityMismatch => "E0004",
            Code::NotAPair => "E0005",
            Code::CannotInfer => "E0006",
            Code::InvalidAssignment => "E0007",
            Code::ReadError => "E0101",
            Code::SyntaxError => "E0102",
            Code::RuntimeError => "E0201",
            Code::ResourceExhausted => "E0202",
            Code::InternalError => "E0203",
            Code::UnusedSignature => "W0001",
        }
    }

    /// The severity this code carries by default.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::UnusedSignature => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Every code, for table-driven tests and schema docs.
    pub fn all() -> &'static [Code] {
        &[
            Code::UnboundVariable,
            Code::TypeMismatch,
            Code::NotAFunction,
            Code::ArityMismatch,
            Code::NotAPair,
            Code::CannotInfer,
            Code::InvalidAssignment,
            Code::ReadError,
            Code::SyntaxError,
            Code::RuntimeError,
            Code::ResourceExhausted,
            Code::InternalError,
            Code::UnusedSignature,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational.
    Note,
    /// Suspicious but not fatal; checking still succeeds.
    Warning,
    /// The module does not type check.
    Error,
}

impl Severity {
    /// The lowercase name used in rendered output and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Payloads and labels
// ---------------------------------------------------------------------------

/// The structured (machine-readable) part of a diagnostic. Types and
/// failed refinement goals are carried as shared trees (`Arc<Ty>` /
/// `Arc<Prop>`), materialized from the interner at construction — a
/// diagnostic outlives the check that produced it (and any interner
/// eviction after it), so it must not hold arena ids.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum Payload {
    /// No structured payload.
    #[default]
    None,
    /// An unbound variable.
    Unbound {
        /// The variable.
        var: Symbol,
    },
    /// A subtype check failed.
    Mismatch {
        /// The required type.
        expected: Arc<Ty>,
        /// The synthesized type.
        got: Arc<Ty>,
        /// When the required type is a refinement: the proposition the
        /// proof system could not discharge.
        failed_prop: Option<Arc<Prop>>,
        /// Solver theories the required type mentions — a union of
        /// [`THEORY_LIN`]/[`THEORY_BV`]/[`THEORY_STR`] bits. Zero when
        /// the failure is purely structural.
        theories: u8,
    },
    /// A non-function was applied.
    NotAFunction {
        /// The operator's synthesized type.
        got: Arc<Ty>,
    },
    /// Wrong number of arguments.
    Arity {
        /// Parameters expected.
        expected: usize,
        /// Arguments given.
        got: usize,
    },
    /// `fst`/`snd` on a non-pair.
    NotAPair {
        /// The argument's synthesized type.
        got: Arc<Ty>,
    },
    /// Local type inference failed.
    CannotInfer {
        /// Human-readable reason.
        reason: String,
    },
    /// `set!` of an ill-typed value.
    BadAssignment {
        /// The assigned variable.
        var: Symbol,
        /// Its declared type.
        expected: Arc<Ty>,
        /// The assigned expression's type.
        got: Arc<Ty>,
    },
    /// A resource-governance limit tripped (`E0202`); the verdict is a
    /// conservative degradation (see [`crate::budget`]).
    Exhausted {
        /// Which limit tripped.
        limit: LimitKind,
    },
    /// An internal checker error was isolated to this item (`E0203`).
    Ice {
        /// The panic payload, when it carried one.
        detail: String,
    },
}

impl Payload {
    /// The lowercase kind tag used in the JSON schema.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::None => "none",
            Payload::Unbound { .. } => "unbound",
            Payload::Mismatch { .. } => "mismatch",
            Payload::NotAFunction { .. } => "not-a-function",
            Payload::Arity { .. } => "arity",
            Payload::NotAPair { .. } => "not-a-pair",
            Payload::CannotInfer { .. } => "cannot-infer",
            Payload::BadAssignment { .. } => "bad-assignment",
            Payload::Exhausted { .. } => "exhausted",
            Payload::Ice { .. } => "ice",
        }
    }
}

/// Renders a theory mask as human-readable theory names.
pub fn theory_names(mask: u8) -> Vec<&'static str> {
    let mut out = Vec::new();
    if mask & THEORY_LIN != 0 {
        out.push("linear arithmetic");
    }
    if mask & THEORY_BV != 0 {
        out.push("bitvectors");
    }
    if mask & THEORY_STR != 0 {
        out.push("regular expressions");
    }
    out
}

/// A secondary location attached to a diagnostic.
#[derive(Clone, PartialEq, Debug)]
pub struct Label {
    /// The node the label points at (resolved into `span` by
    /// [`Diagnostic::resolve_spans`]).
    pub node: Option<NodeId>,
    /// The resolved source region, if known.
    pub span: Option<Span>,
    /// What to say about it.
    pub message: String,
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// A structured, located checker diagnostic.
///
/// Built by the checker with a [`NodeId`] (the nearest enclosing
/// elaborated node); drivers that hold the [`SpanTable`] call
/// [`Diagnostic::resolve_spans`] to fill in [`Diagnostic::primary`]
/// before handing the diagnostic to users.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// The stable machine-readable code.
    pub code: Code,
    /// Error / warning / note.
    pub severity: Severity,
    /// The headline message (complete sentence, no location).
    pub message: String,
    /// The nearest enclosing elaborated node, when the error arose from
    /// elaborated source (errors from hand-built [`crate::syntax::Expr`]
    /// trees have none).
    pub node: Option<NodeId>,
    /// The primary source region, once resolved.
    pub primary: Option<Span>,
    /// Secondary labelled regions.
    pub labels: Vec<Label>,
    /// The structured payload.
    pub payload: Payload,
    /// Free-form notes appended to rendered output.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with `code`'s default severity and no location.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            node: None,
            primary: None,
            labels: Vec::new(),
            payload: Payload::None,
            notes: Vec::new(),
        }
    }

    // -- construction helpers for the checker's error sites ------------------

    /// `E0001`: unbound variable.
    pub fn unbound(var: Symbol) -> Diagnostic {
        Diagnostic::new(Code::UnboundVariable, format!("unbound variable {var}"))
            .with_payload(Payload::Unbound { var })
    }

    /// `E0002`: `context`'s expression required `expected` but got `got`.
    ///
    /// When `expected` is a refinement type, the failed proposition and
    /// the solver theories it mentions are recorded in the payload and a
    /// note names them.
    pub fn mismatch(context: String, expected: &Ty, got: &Ty) -> Diagnostic {
        let expected_id = TyId::of(expected);
        let failed_prop = match expected {
            Ty::Refine(r) => Some(PropId::of(&r.prop).get()),
            _ => None,
        };
        let theories = expected_id.theory_mask();
        let mut d = Diagnostic::new(
            Code::TypeMismatch,
            format!("type checker error in {context}: expected {expected} but given {got}"),
        )
        .with_payload(Payload::Mismatch {
            expected: expected_id.get(),
            got: TyId::of(got).get(),
            failed_prop: failed_prop.clone(),
            theories,
        });
        if let Some(p) = failed_prop {
            let names = theory_names(theories);
            let consulted = if names.is_empty() {
                String::new()
            } else {
                format!(" (theories consulted: {})", names.join(", "))
            };
            d = d.with_note(format!(
                "the refinement {p} was not provable here{consulted}"
            ));
        }
        d
    }

    /// `E0003`: application of a non-function.
    pub fn not_a_function(context: String, got: &Ty) -> Diagnostic {
        Diagnostic::new(
            Code::NotAFunction,
            format!("type checker error in {context}: not a function (has type {got})"),
        )
        .with_payload(Payload::NotAFunction {
            got: TyId::of(got).get(),
        })
    }

    /// `E0004`: wrong number of arguments.
    pub fn arity(context: String, expected: usize, got: usize) -> Diagnostic {
        Diagnostic::new(
            Code::ArityMismatch,
            format!(
                "type checker error in {context}: expected {expected} argument(s), given {got}"
            ),
        )
        .with_payload(Payload::Arity { expected, got })
    }

    /// `E0005`: `fst`/`snd` on a non-pair.
    pub fn not_a_pair(context: String, got: &Ty) -> Diagnostic {
        Diagnostic::new(
            Code::NotAPair,
            format!("type checker error in {context}: not a pair (has type {got})"),
        )
        .with_payload(Payload::NotAPair {
            got: TyId::of(got).get(),
        })
    }

    /// `E0006`: polymorphic instantiation failed.
    pub fn cannot_infer(context: String, reason: String) -> Diagnostic {
        Diagnostic::new(
            Code::CannotInfer,
            format!("type checker error in {context}: cannot infer type arguments ({reason})"),
        )
        .with_payload(Payload::CannotInfer { reason })
    }

    /// `E0007`: `set!` of an ill-typed value.
    pub fn bad_assignment(var: Symbol, expected: &Ty, got: &Ty) -> Diagnostic {
        Diagnostic::new(
            Code::InvalidAssignment,
            format!("type checker error in (set! {var} …): expected {expected} but given {got}"),
        )
        .with_payload(Payload::BadAssignment {
            var,
            expected: TyId::of(expected).get(),
            got: TyId::of(got).get(),
        })
    }

    /// `E0202`: a resource-governance limit tripped while checking
    /// `context`. The diagnostic carries the limit in its payload and
    /// explains the three-valued contract in a note.
    pub fn exhausted(context: String, limit: LimitKind) -> Diagnostic {
        Diagnostic::new(
            Code::ResourceExhausted,
            format!("resource limit exceeded in {context}: {}", limit.describe()),
        )
        .with_payload(Payload::Exhausted { limit })
        .with_note(
            "checking was cut short, so this is a conservative rejection, \
             not a proof that the item is ill-typed; raise the limit to get \
             a definite verdict",
        )
    }

    /// `E0203`: an internal checker error (panic) was isolated to
    /// `context`.
    pub fn ice(context: String, detail: String) -> Diagnostic {
        Diagnostic::new(
            Code::InternalError,
            format!("internal checker error in {context}: {detail}"),
        )
        .with_payload(Payload::Ice { detail })
        .with_note(
            "this is a bug in the checker, not in the checked program; \
             the rest of the module was checked normally",
        )
    }

    /// `E0101`: lexical error at `at`.
    pub fn read_error(message: impl Into<String>, at: Span) -> Diagnostic {
        let mut d = Diagnostic::new(Code::ReadError, message);
        d.primary = Some(at);
        d
    }

    /// `E0102`: elaboration error at `at`.
    pub fn syntax_error(message: impl Into<String>, at: Span) -> Diagnostic {
        let mut d = Diagnostic::new(Code::SyntaxError, message);
        d.primary = Some(at);
        d
    }

    // -- fluent field setters -------------------------------------------------

    /// Sets the payload.
    pub fn with_payload(mut self, payload: Payload) -> Diagnostic {
        self.payload = payload;
        self
    }

    /// Appends a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Appends a secondary label at an elaborated node.
    pub fn with_label(mut self, node: Option<NodeId>, message: impl Into<String>) -> Diagnostic {
        self.labels.push(Label {
            node,
            span: None,
            message: message.into(),
        });
        self
    }

    /// Sets the primary node (construction sites that know a precise
    /// sub-expression node use this; `None` leaves it to bubbling).
    pub fn at(mut self, node: Option<NodeId>) -> Diagnostic {
        if node.is_some() {
            self.node = node;
        }
        self
    }

    /// Sets the primary node *if none is recorded yet* — the innermost
    /// enclosing [`crate::syntax::Expr::Spanned`] wins as errors bubble
    /// out of the checker.
    pub fn or_node(mut self, node: NodeId) -> Diagnostic {
        if self.node.is_none() {
            self.node = Some(node);
        }
        self
    }

    /// Resolves the primary node and label nodes into spans using the
    /// elaborator's table. Nodes synthesized by macro expansion resolve
    /// to the macro use site's span and gain an explanatory note.
    pub fn resolve_spans(&mut self, table: &SpanTable) {
        if self.primary.is_none() {
            if let Some(node) = self.node {
                self.primary = Some(table.get(node));
                if table.expansion_of(node).is_some() {
                    self.notes
                        .push("this code was synthesized by macro expansion; the span points at the macro use".to_owned());
                }
            }
        }
        for label in &mut self.labels {
            if label.span.is_none() {
                if let Some(node) = label.node {
                    label.span = Some(table.get(node));
                }
            }
        }
    }

    /// Is this an error (as opposed to a warning or note)?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(span) = self.primary {
            write!(f, " (at {})", span.start)?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

// ---------------------------------------------------------------------------
// Human rendering
// ---------------------------------------------------------------------------

/// Renders `d` in the human format: headline, source snippet with caret
/// underlines for the primary span, one snippet per labelled secondary
/// span, then notes.
///
/// `file` is a display name; `source` the file's full text (used for the
/// snippets — a span past the end of `source` renders without one).
pub fn render(d: &Diagnostic, file: &str, source: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
    let gutter = gutter_width(d, source);
    if let Some(span) = d.primary {
        render_snippet(&mut out, file, source, span, '^', "", gutter);
    }
    for label in &d.labels {
        match label.span {
            Some(span) => render_snippet(&mut out, file, source, span, '-', &label.message, gutter),
            None => out.push_str(&format!("{:gutter$} = {}\n", "", label.message)),
        }
    }
    for note in &d.notes {
        out.push_str(&format!("{:gutter$} = note: {}\n", "", note));
    }
    out
}

fn gutter_width(d: &Diagnostic, source: &str) -> usize {
    let max_line = d
        .primary
        .iter()
        .chain(d.labels.iter().filter_map(|l| l.span.as_ref()))
        .map(|s| s.start.line as usize)
        .max()
        .unwrap_or(1)
        .min(source.lines().count().max(1));
    max_line.to_string().len() + 1
}

fn render_snippet(
    out: &mut String,
    file: &str,
    source: &str,
    span: Span,
    underline: char,
    label: &str,
    gutter: usize,
) {
    out.push_str(&format!("{:gutter$}--> {file}:{}\n", "", span.start));
    let Some(line_text) = source.lines().nth(span.start.line as usize - 1) else {
        return;
    };
    let line_no = span.start.line;
    out.push_str(&format!("{:gutter$} |\n", ""));
    out.push_str(&format!("{line_no:>gutter$} | {line_text}\n"));
    // Underline from the start column to the end column (same line) or
    // to the end of the line (multi-line spans).
    let start_col = span.start.col.max(1) as usize;
    let line_chars = line_text.chars().count();
    let end_col = if span.end.line == span.start.line && span.end.col as usize > start_col {
        (span.end.col as usize).min(line_chars + 1)
    } else {
        (line_chars + 1).max(start_col + 1)
    };
    let width = (end_col - start_col).max(1);
    let carets: String = std::iter::repeat_n(underline, width).collect();
    let pad = " ".repeat(start_col - 1);
    if label.is_empty() {
        out.push_str(&format!("{:gutter$} | {pad}{carets}\n", ""));
    } else {
        out.push_str(&format!("{:gutter$} | {pad}{carets} {label}\n", ""));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::all() {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
        }
        assert_eq!(Code::TypeMismatch.as_str(), "E0002");
        assert_eq!(Code::UnusedSignature.default_severity(), Severity::Warning);
    }

    #[test]
    fn mismatch_payload_carries_the_type_trees() {
        let d = Diagnostic::mismatch("(f x)".into(), &Ty::Int, &Ty::bool_ty());
        assert_eq!(d.code, Code::TypeMismatch);
        assert!(d.is_error());
        let Payload::Mismatch { expected, got, .. } = d.payload else {
            panic!("expected a mismatch payload");
        };
        assert_eq!(*expected, Ty::Int);
        assert_eq!(*got, Ty::bool_ty());
        assert!(d.message.contains("expected Int"));
        assert!(d.message.contains("given Bool"));
    }

    #[test]
    fn exhausted_and_ice_have_codes_payloads_and_notes() {
        let d = Diagnostic::exhausted("(define (f …) …)".into(), LimitKind::Deadline);
        assert_eq!(d.code, Code::ResourceExhausted);
        assert_eq!(d.code.as_str(), "E0202");
        assert!(d.is_error());
        assert_eq!(
            d.payload,
            Payload::Exhausted {
                limit: LimitKind::Deadline
            }
        );
        assert_eq!(d.payload.kind(), "exhausted");
        assert!(d.notes.iter().any(|n| n.contains("conservative")));

        let d = Diagnostic::ice("(define (g …) …)".into(), "boom".into());
        assert_eq!(d.code, Code::InternalError);
        assert_eq!(d.code.as_str(), "E0203");
        assert_eq!(d.payload.kind(), "ice");
        assert!(d.notes.iter().any(|n| n.contains("bug in the checker")));
    }

    #[test]
    fn refined_mismatch_records_the_failed_prop_and_theory() {
        use crate::syntax::{LinCmp, Obj, Prop};
        let i = Symbol::intern("diag_i");
        let nat = Ty::refine(i, Ty::Int, Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(i)));
        let d = Diagnostic::mismatch("(f x)".into(), &nat, &Ty::Int);
        let Payload::Mismatch {
            failed_prop,
            theories,
            ..
        } = d.payload
        else {
            panic!("expected a mismatch payload");
        };
        assert!(failed_prop.is_some());
        assert_eq!(theories & THEORY_LIN, THEORY_LIN);
        assert!(d.notes.iter().any(|n| n.contains("linear arithmetic")));
    }

    #[test]
    fn span_table_provenance() {
        let mut t = SpanTable::new();
        let surface = t.insert(Span::new(Loc { line: 2, col: 3 }, Loc { line: 2, col: 20 }));
        let synth = t.insert_synthesized(surface);
        assert_eq!(t.get(synth), t.get(surface));
        assert_eq!(t.expansion_of(synth), Some(surface));
        assert_eq!(t.expansion_of(surface), None);

        let mut d = Diagnostic::unbound(Symbol::intern("q")).or_node(synth);
        d.resolve_spans(&t);
        assert_eq!(d.primary, Some(t.get(surface)));
        assert!(d.notes.iter().any(|n| n.contains("macro expansion")));
    }

    #[test]
    fn or_node_keeps_the_innermost() {
        let mut t = SpanTable::new();
        let inner = t.insert(Span::point(Loc { line: 1, col: 5 }));
        let outer = t.insert(Span::point(Loc { line: 1, col: 1 }));
        let d = Diagnostic::unbound(Symbol::intern("q"))
            .or_node(inner)
            .or_node(outer);
        assert_eq!(d.node, Some(inner));
    }

    #[test]
    fn rendering_underlines_the_span() {
        let source = "(define x 1)\n(add1 #t)\n";
        let mut d = Diagnostic::mismatch("(add1 #t)".into(), &Ty::Int, &Ty::True);
        d.primary = Some(Span::new(Loc { line: 2, col: 7 }, Loc { line: 2, col: 9 }));
        let rendered = render(&d, "demo.rtr", source);
        assert!(rendered.contains("error[E0002]"));
        assert!(rendered.contains("demo.rtr:2:7"));
        assert!(rendered.contains("(add1 #t)"));
        assert!(rendered.contains("      ^^"), "caret line: {rendered}");
    }

    #[test]
    fn display_appends_the_location() {
        let mut d = Diagnostic::unbound(Symbol::intern("zz"));
        assert_eq!(d.to_string(), "unbound variable zz");
        d.primary = Some(Span::point(Loc { line: 4, col: 2 }));
        assert!(d.to_string().ends_with("(at 4:2)"));
    }

    #[test]
    fn line_index_converts_between_all_three_position_systems() {
        // "ké" is 1 char/1 byte + 1 char/2 bytes; "𝒳" is an astral
        // char: 4 bytes, 2 UTF-16 units, 1 reader column.
        let text = "ké\n𝒳 x\n";
        let ix = LineIndex::new(text);
        assert_eq!(ix.line_count(), 3);

        // 'é' starts at byte 1, line 1 col 2.
        assert_eq!(ix.byte_to_loc(text, 1), Loc { line: 1, col: 2 });
        assert_eq!(ix.loc_to_byte(text, Loc { line: 1, col: 2 }), 1);
        // 'x' on line 2: after "𝒳 " = 5 bytes into the line (line
        // starts at byte 4), reader col 3, UTF-16 character 3.
        let x_loc = Loc { line: 2, col: 3 };
        assert_eq!(ix.loc_to_byte(text, x_loc), 9);
        assert_eq!(
            ix.loc_to_utf16(text, x_loc),
            Utf16Pos {
                line: 1,
                character: 3
            }
        );
        assert_eq!(
            ix.utf16_to_loc(
                text,
                Utf16Pos {
                    line: 1,
                    character: 3
                }
            ),
            x_loc
        );
        // A position inside the surrogate pair resolves to 𝒳 itself.
        assert_eq!(
            ix.utf16_to_loc(
                text,
                Utf16Pos {
                    line: 1,
                    character: 1
                }
            ),
            Loc { line: 2, col: 1 }
        );
        // A byte inside 𝒳's UTF-8 sequence rounds down to it.
        assert_eq!(ix.byte_to_loc(text, 6), Loc { line: 2, col: 1 });
    }

    #[test]
    fn line_index_clamps_out_of_range_positions() {
        let text = "ab\ncd";
        let ix = LineIndex::new(text);
        assert_eq!(ix.byte_to_loc(text, 99), Loc { line: 2, col: 3 });
        assert_eq!(ix.loc_to_byte(text, Loc { line: 1, col: 99 }), 2);
        assert_eq!(ix.loc_to_byte(text, Loc { line: 99, col: 1 }), 3);
        assert_eq!(
            ix.utf16_to_loc(
                text,
                Utf16Pos {
                    line: 9,
                    character: 9
                }
            ),
            Loc { line: 2, col: 3 }
        );
        let empty = "";
        let eix = LineIndex::new(empty);
        assert_eq!(eix.line_count(), 1);
        assert_eq!(eix.byte_to_loc(empty, 0), Loc { line: 1, col: 1 });
    }
}
