//! Memo tables for the checker's mutually recursive judgments.
//!
//! Keys combine the environment's generation stamp (see
//! [`crate::env::Env::generation`]) with interned ids from
//! [`crate::intern`], so a lookup is a couple of integer hashes. Entries
//! are **fuel-aware**: the judgments take a recursion budget, and a
//! negative verdict obtained with little fuel must not answer a query
//! asked with more (the extra fuel might have found a derivation). A
//! `true` verdict is monotone — more fuel only explores a superset — so it
//! is valid at any budget. Concretely:
//!
//! * `True` entries answer every query;
//! * `FalseAt(f)` entries answer queries with `fuel <= f` and are
//!   recomputed (and widened) otherwise.
//!
//! The tables live behind `Mutex`es so the checker stays `Sync` (it runs
//! on a dedicated big-stack thread); checking itself is single-threaded,
//! so the locks are uncontended. Each table is capped — on overflow it is
//! simply cleared, which is always sound for a memo table.
//!
//! With the `stats` Cargo feature, per-table hit/miss counters are
//! maintained and exposed through [`crate::check::Checker`]'s stats API
//! (surfaced by `rtr check --stats`).

use std::hash::Hash;

use rtr_solver::fxhash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::intern::{PropId, TyId};

/// Poison-recovering lock: a memo table only ever holds *valid-if-present*
/// entries (every store is sound to replay or to lose), so a panic while a
/// lock was held cannot leave a table in a state worse than "some entries
/// missing". Recovering from the poison flag keeps warm caches alive after
/// an isolated item panic instead of cascading the abort to every later
/// check.
pub(crate) trait LockRecover<T> {
    /// Locks, clearing a poison flag left by a panicked holder.
    fn lock_recover(&self) -> MutexGuard<'_, T>;
}

impl<T> LockRecover<T> for Mutex<T> {
    fn lock_recover(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Entries above this count trigger a table flush (memory backstop).
const TABLE_CAP: usize = 1 << 20;

/// A cached verdict for a fuel-bounded boolean judgment.
#[derive(Clone, Copy, Debug)]
enum Entry {
    /// The judgment holds (valid at any fuel).
    True,
    /// The judgment failed when asked with this much fuel; valid for
    /// queries with at most that much.
    FalseAt(u32),
}

/// Hit/miss counters for one table (compiled only with `stats`).
#[cfg(feature = "stats")]
#[derive(Debug, Default)]
pub(crate) struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
}

#[cfg(feature = "stats")]
impl Counters {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// A fuel-aware memo table.
#[derive(Debug)]
pub(crate) struct Table<K> {
    map: Mutex<FxHashMap<K, Entry>>,
    #[cfg(feature = "stats")]
    pub(crate) counters: Counters,
}

// Manual impl: `derive(Default)` would needlessly bound `K: Default`.
impl<K> Default for Table<K> {
    fn default() -> Self {
        Table {
            map: Mutex::new(FxHashMap::default()),
            #[cfg(feature = "stats")]
            counters: Counters::default(),
        }
    }
}

impl<K: Eq + Hash + Copy> Table<K> {
    pub(crate) fn lookup(&self, key: K, fuel: u32) -> Option<bool> {
        let verdict = match self.map.lock_recover().get(&key) {
            Some(Entry::True) => Some(true),
            Some(Entry::FalseAt(f)) if fuel <= *f => Some(false),
            _ => None,
        };
        #[cfg(feature = "stats")]
        match verdict {
            Some(_) => self.counters.hit(),
            None => self.counters.miss(),
        }
        verdict
    }

    pub(crate) fn store(&self, key: K, fuel: u32, verdict: bool) {
        let mut map = self.map.lock_recover();
        if map.len() >= TABLE_CAP {
            map.clear();
        }
        match (verdict, map.get(&key)) {
            // True dominates (and never regresses to false).
            (true, _) => {
                map.insert(key, Entry::True);
            }
            (false, Some(Entry::True)) => {}
            (false, Some(Entry::FalseAt(f))) if *f >= fuel => {}
            (false, _) => {
                map.insert(key, Entry::FalseAt(fuel));
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.lock_recover().len()
    }

    pub(crate) fn clear(&self) {
        self.map.lock_recover().clear();
    }
}

/// A fuel-free memo table (for purely structural judgments).
#[derive(Debug)]
pub(crate) struct SimpleTable<K> {
    map: Mutex<FxHashMap<K, bool>>,
    #[cfg(feature = "stats")]
    pub(crate) counters: Counters,
}

impl<K> Default for SimpleTable<K> {
    fn default() -> Self {
        SimpleTable {
            map: Mutex::new(FxHashMap::default()),
            #[cfg(feature = "stats")]
            counters: Counters::default(),
        }
    }
}

impl<K: Eq + Hash + Copy> SimpleTable<K> {
    pub(crate) fn lookup(&self, key: K) -> Option<bool> {
        let verdict = self.map.lock_recover().get(&key).copied();
        #[cfg(feature = "stats")]
        match verdict {
            Some(_) => self.counters.hit(),
            None => self.counters.miss(),
        }
        verdict
    }

    pub(crate) fn store(&self, key: K, verdict: bool) {
        let mut map = self.map.lock_recover();
        if map.len() >= TABLE_CAP {
            map.clear();
        }
        map.insert(key, verdict);
    }

    pub(crate) fn len(&self) -> usize {
        self.map.lock_recover().len()
    }

    pub(crate) fn clear(&self) {
        self.map.lock_recover().clear();
    }
}

/// A verdict memo for solver-level queries: non-`Copy` structural keys
/// (canonicalized constraint-system fingerprints), `Copy` verdict values.
/// Capped and flushed like the judgment tables — clearing a memo is
/// always sound.
#[derive(Debug)]
pub(crate) struct VerdictMap<K, V> {
    map: Mutex<FxHashMap<K, V>>,
    #[cfg(feature = "stats")]
    pub(crate) counters: Counters,
}

impl<K, V> Default for VerdictMap<K, V> {
    fn default() -> Self {
        VerdictMap {
            map: Mutex::new(FxHashMap::default()),
            #[cfg(feature = "stats")]
            counters: Counters::default(),
        }
    }
}

impl<K: Eq + Hash, V: Clone> VerdictMap<K, V> {
    pub(crate) fn lookup(&self, key: &K) -> Option<V> {
        let verdict = self.map.lock_recover().get(key).cloned();
        #[cfg(feature = "stats")]
        match verdict {
            Some(_) => self.counters.hit(),
            None => self.counters.miss(),
        }
        verdict
    }

    pub(crate) fn store(&self, key: K, verdict: V) {
        let mut map = self.map.lock_recover();
        if map.len() >= SOLVER_TABLE_CAP {
            map.clear();
        }
        map.insert(key, verdict);
    }

    pub(crate) fn len(&self) -> usize {
        self.map.lock_recover().len()
    }

    pub(crate) fn clear(&self) {
        self.map.lock_recover().clear();
    }
}

/// Cap for the solver verdict/state maps. Smaller than [`TABLE_CAP`]:
/// these keys are token vectors (and the state map holds whole
/// constraint systems), not a couple of integers.
pub(crate) const SOLVER_TABLE_CAP: usize = 1 << 18;

/// Memo key for the id-native `update±` metafunction: the subject type,
/// a fingerprint of the field path, the learned type, the polarity, and
/// the fuel the query was asked with (update results are fuel-truncated,
/// so entries are only replayed at the exact budget that produced them).
/// Only environment-free pairs are memoized — their results consult
/// nothing but the two types, so one entry serves every environment;
/// environment-dependent pairs would be keyed by generation, which
/// advances at every binder and never hits.
pub(crate) type UpdateKey = (TyId, u64, TyId, bool, u32);

/// Packs a field path into a `u64` fingerprint (2 bits per field,
/// innermost first). Paths deeper than 31 fields are not memoized —
/// `None` keeps the key honest instead of colliding.
pub(crate) fn path_fingerprint(fields: &[crate::syntax::Field]) -> Option<u64> {
    if fields.len() > 31 {
        return None;
    }
    let mut fp: u64 = 1; // leading 1 delimits length
    for f in fields {
        fp = (fp << 2)
            | match f {
                crate::syntax::Field::Fst => 1,
                crate::syntax::Field::Snd => 2,
                crate::syntax::Field::Len => 3,
            };
    }
    Some(fp)
}

/// Relevance metadata for a stored disjunction: the union of both
/// literals' free variables (sorted) and their `THEORY_*` bits.
pub(crate) type ClauseMeta = (std::sync::Arc<[crate::syntax::Symbol]>, u8);

/// Counters for the lazy case-split scheduler (compiled only with
/// `stats`; the scheduler itself runs identically without them).
#[cfg(feature = "stats")]
#[derive(Debug, Default)]
pub(crate) struct SplitStats {
    /// Clauses that collapsed to a unit literal at split time (one side
    /// absurd under the current environment).
    pub(crate) units: AtomicU64,
    /// Case splits actually performed (both branches explored).
    pub(crate) taken: AtomicU64,
    /// Clauses scheduled behind the goal-relevant ones (pass 1). Each
    /// deferral that never gets split is proof search the eager order
    /// would have paid for.
    pub(crate) deferred: AtomicU64,
}

#[cfg(feature = "stats")]
impl SplitStats {
    pub(crate) fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.units.load(Ordering::Relaxed),
            self.taken.load(Ordering::Relaxed),
            self.deferred.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn bump(c: &AtomicU64, by: u64) {
        c.fetch_add(by, Ordering::Relaxed);
    }
}

/// The full cache set shared by a [`crate::check::Checker`] (and its
/// clones — verdicts depend only on the immutable config, globally unique
/// environment generations and interned ids, so sharing is sound).
#[derive(Debug, Default)]
pub(crate) struct Caches {
    /// `Γ ⊢ τ₁ <: τ₂`, keyed `(generation, t1, t2)`. No in-progress set:
    /// types are finite trees, so re-entrant identical queries are
    /// fuel-bounded recursion, not cycles (see `Checker::subtype`).
    pub(crate) subtype: Table<(u64, TyId, TyId)>,
    /// `Γ ⊢ ψ`, keyed `(generation, goal, case-split budget)`.
    pub(crate) proves: Table<(u64, PropId, u32)>,
    /// Environment inconsistency, keyed by generation.
    pub(crate) inconsistent: Table<u64>,
    /// Structural type emptiness, keyed by interned type.
    pub(crate) empty: SimpleTable<TyId>,
    /// `update±(τ, ϕ⃗, σ)` results, keyed per [`UpdateKey`]. Values are
    /// interned ids, so a hit replays an alias-chain binder's whole
    /// narrowing without rebuilding (or even touching) a type tree.
    pub(crate) update: VerdictMap<UpdateKey, TyId>,
    /// May-overlap verdicts keyed `(τ₁, τ₂)` — `overlap` consults only
    /// the two types, so entries are environment- and fuel-free.
    pub(crate) overlap: SimpleTable<(TyId, TyId)>,
    /// Linear-theory satisfiability keyed on the canonical constraint
    /// system (facts, or facts ∧ ¬goal for entailment queries).
    pub(crate) lin: VerdictMap<crate::solver_cache::TheoryFp, rtr_solver::lin::LinResult>,
    /// Bitvector-theory satisfiability, same keying discipline.
    pub(crate) bv: VerdictMap<crate::solver_cache::TheoryFp, rtr_solver::bv::BvResult>,
    /// Regex-theory verdicts (`true` = the queried conjunction is
    /// unsatisfiable / the entailment holds; see `solver_cache`).
    pub(crate) re: VerdictMap<crate::solver_cache::TheoryFp, bool>,
    /// Incremental Fourier–Motzkin states keyed by the environment's
    /// linear-store epoch (see [`crate::env::Env::lin_epoch`]).
    pub(crate) lin_stores: Mutex<FxHashMap<u64, std::sync::Arc<crate::solver_cache::LinStore>>>,
    /// The checker's persistent bitvector session (shared bit-blast
    /// encodings and learnt clauses), created lazily.
    pub(crate) bv_oracle: Mutex<Option<crate::solver_cache::BvOracle>>,
    /// The checker's persistent regex session (shared compiled DFAs,
    /// product automata and emptiness verdicts), created lazily.
    pub(crate) re_oracle: Mutex<Option<crate::solver_cache::ReOracle>>,
    /// Relevance metadata per stored disjunction, keyed by the literal
    /// id pair — computed once per distinct clause, consulted by the
    /// lazy split scheduler on every `proves` that reaches ∨-elimination.
    pub(crate) clause_meta: VerdictMap<(PropId, PropId), ClauseMeta>,
    /// Lazy split scheduler counters (`--stats`).
    #[cfg(feature = "stats")]
    pub(crate) splits: SplitStats,
    /// Instantiated polymorphic Δ-table types, keyed
    /// `(primitive, canonical argument type ids)` — local type inference
    /// is deterministic in its inputs, so the monomorphic function type
    /// can be replayed instead of re-derived at every application.
    pub(crate) instantiations:
        Mutex<FxHashMap<(crate::syntax::Prim, Vec<TyId>), crate::syntax::FunTy>>,
    /// The interner evict-epoch this cache set has reconciled against
    /// (see [`Caches::reconcile_evictions`]).
    evict_seen: AtomicU64,
}

impl Caches {
    /// Total entries across all tables (diagnostics / tests).
    pub(crate) fn entry_count(&self) -> usize {
        self.subtype.len()
            + self.proves.len()
            + self.inconsistent.len()
            + self.empty.len()
            + self.update.len()
            + self.overlap.len()
            + self.lin.len()
            + self.bv.len()
            + self.re.len()
            + self.clause_meta.len()
            + self.lin_stores.lock_recover().len()
    }

    /// Brings this cache set up to date with the interner's fresh-region
    /// evictions (see [`crate::intern`]): if another session evicted the
    /// fresh arena since our last check, drop the one table whose
    /// *values* are type ids — a stale fresh id stored there would panic
    /// on materialization. Keys are harmless: fresh indices are monotone
    /// across evictions (never reused), so a stale key can only miss,
    /// never alias a live entry.
    pub(crate) fn reconcile_evictions(&self) {
        let epoch = crate::intern::evict_epoch();
        if self.evict_seen.swap(epoch, Ordering::Relaxed) != epoch {
            self.update.clear();
        }
    }

    /// Flushes the judgment-level memo tables (chaos `CacheFlush`
    /// injection point; also usable as a memory release valve). Sound by
    /// construction — every entry is a pure function of its key.
    #[cfg_attr(not(feature = "chaos"), allow(dead_code))]
    pub(crate) fn flush_judgment_tables(&self) {
        self.subtype.clear();
        self.proves.clear();
        self.inconsistent.clear();
        self.empty.clear();
        self.update.clear();
        self.overlap.clear();
    }
}
