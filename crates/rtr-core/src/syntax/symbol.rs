//! Interned identifiers.
//!
//! Symbols are cheap to copy, hash and compare; the checker allocates many
//! fresh names (existential binders, §4.1's propagated existentials), so
//! interning keeps types and propositions compact.

use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::cache::LockRecover;

/// An interned identifier.
///
/// # Examples
///
/// ```
/// use rtr_core::syntax::Symbol;
///
/// let x = Symbol::intern("x");
/// assert_eq!(x, Symbol::intern("x"));
/// assert_eq!(x.as_str(), "x");
/// assert_ne!(x, Symbol::intern("y"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    /// Parallel to `names`: was this symbol minted by [`Symbol::fresh`]?
    /// The type/prop interner routes fresh-named trees to its evictable
    /// region instead of the permanent arena (see `crate::intern`).
    fresh: Vec<bool>,
    lookup: std::collections::HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            fresh: Vec::new(),
            lookup: std::collections::HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its unique symbol.
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner().lock_recover();
        if let Some(&id) = i.lookup.get(name) {
            return Symbol(id);
        }
        let id = i.names.len() as u32;
        // Interned strings live for the program's duration by design.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.names.push(leaked);
        i.fresh.push(false);
        i.lookup.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().lock_recover().names[self.0 as usize]
    }

    /// The raw interner index. Stable for the process lifetime; used as a
    /// hash seed by `crate::pmap` and for id-level bookkeeping.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Creates a fresh symbol guaranteed distinct from every symbol
    /// interned so far, derived from `base` for readability.
    ///
    /// A generated name that happens to already exist (source programs
    /// may legally contain `%`) is skipped rather than reused: marking an
    /// existing, recurring user symbol as fresh would misroute its trees
    /// to the interner's evictable fresh region. The loop terminates
    /// because the counter strictly increases and only finitely many
    /// names are ever interned.
    pub fn fresh(base: &str) -> Symbol {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            // Wrapping back to 0 would silently reuse "fresh" names; u64
            // makes that unreachable in practice, but make it loud in
            // debug builds.
            debug_assert!(n < u64::MAX, "Symbol::fresh counter overflowed");
            let name = format!("{base}%{n}");
            let mut i = interner().lock_recover();
            if i.lookup.contains_key(name.as_str()) {
                continue;
            }
            let id = i.names.len() as u32;
            let leaked: &'static str = Box::leak(name.into_boxed_str());
            i.names.push(leaked);
            i.fresh.push(true);
            i.lookup.insert(leaked, id);
            return Symbol(id);
        }
    }

    /// Was this symbol minted by [`Symbol::fresh`]? Fresh names never
    /// recur across checked modules, so trees that mention one are routed
    /// to the interner's evictable region rather than its permanent
    /// arena.
    pub fn is_fresh(self) -> bool {
        interner().lock_recover().fresh[self.0 as usize]
    }

    /// Is any of the given symbols fresh? One interner lock for the whole
    /// batch — the type interner calls this per arena insert.
    pub fn any_fresh(syms: impl IntoIterator<Item = Symbol>) -> bool {
        let i = interner().lock_recover();
        syms.into_iter().any(|s| i.fresh[s.0 as usize])
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("a"), Symbol::intern("b"));
    }

    #[test]
    fn fresh_skips_user_interned_collisions() {
        // Pre-intern names shaped like upcoming fresh names ('%' is legal
        // in source identifiers): fresh() must skip them, never reuse
        // them, and never retroactively mark them fresh.
        let probe = Symbol::fresh("cl");
        let n: u64 = probe
            .as_str()
            .rsplit('%')
            .next()
            .expect("fresh names contain %")
            .parse()
            .expect("fresh suffix is a counter");
        let users: Vec<Symbol> = (n + 1..n + 40)
            .map(|k| Symbol::intern(&format!("cl%{k}")))
            .collect();
        for _ in 0..80 {
            let g = Symbol::fresh("cl");
            assert!(g.is_fresh());
            assert!(!users.contains(&g), "fresh reused a user symbol");
        }
        assert!(
            users.iter().all(|u| !u.is_fresh()),
            "a user symbol was retroactively marked fresh"
        );
    }

    #[test]
    fn fresh_is_fresh() {
        let x = Symbol::intern("tmp");
        let f1 = Symbol::fresh("tmp");
        let f2 = Symbol::fresh("tmp");
        assert_ne!(f1, x);
        assert_ne!(f1, f2);
        assert!(f1.as_str().starts_with("tmp%"));
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::intern("disp");
        assert_eq!(format!("{s}"), "disp");
        assert_eq!(format!("{s:?}"), "disp");
    }
}
