//! Interned identifiers.
//!
//! Symbols are cheap to copy, hash and compare; the checker allocates many
//! fresh names (existential binders, §4.1's propagated existentials), so
//! interning keeps types and propositions compact.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned identifier.
///
/// # Examples
///
/// ```
/// use rtr_core::syntax::Symbol;
///
/// let x = Symbol::intern("x");
/// assert_eq!(x, Symbol::intern("x"));
/// assert_eq!(x.as_str(), "x");
/// assert_ne!(x, Symbol::intern("y"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    lookup: std::collections::HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            lookup: std::collections::HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its unique symbol.
    pub fn intern(name: &str) -> Symbol {
        let mut i = interner().lock().expect("interner poisoned");
        if let Some(&id) = i.lookup.get(name) {
            return Symbol(id);
        }
        let id = i.names.len() as u32;
        // Interned strings live for the program's duration by design.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.names.push(leaked);
        i.lookup.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("interner poisoned").names[self.0 as usize]
    }

    /// Creates a fresh symbol guaranteed distinct from every symbol
    /// interned so far, derived from `base` for readability.
    pub fn fresh(base: &str) -> Symbol {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        // Wrapping back to 0 would silently reuse "fresh" names; u64 makes
        // that unreachable in practice, but make it loud in debug builds.
        debug_assert!(n < u64::MAX, "Symbol::fresh counter overflowed");
        Symbol::intern(&format!("{base}%{n}"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("a"), Symbol::intern("b"));
    }

    #[test]
    fn fresh_is_fresh() {
        let x = Symbol::intern("tmp");
        let f1 = Symbol::fresh("tmp");
        let f2 = Symbol::fresh("tmp");
        assert_ne!(f1, x);
        assert_ne!(f1, f2);
        assert!(f1.as_str().starts_with("tmp%"));
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::intern("disp");
        assert_eq!(format!("{s}"), "disp");
        assert_eq!(format!("{s:?}"), "disp");
    }
}
