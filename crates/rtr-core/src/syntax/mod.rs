//! Abstract syntax of λ_RTR (Fig. 2): expressions, types, propositions,
//! symbolic objects, fields, and type-results.

mod expr;
mod obj;
mod prop;
mod result;
mod symbol;
mod ty;

pub use expr::{Expr, Lambda, Prim};
pub use obj::{BvObj, Field, LinObj, Obj, Path, StrObj};
pub use prop::{BvAtomProp, BvCmp, LinAtom, LinCmp, Prop, StrAtomProp};
pub use result::TyResult;
pub use symbol::Symbol;
pub use ty::{FunTy, PolyTy, RefineTy, Ty};
