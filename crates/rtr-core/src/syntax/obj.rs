//! Symbolic objects — the canonical program terms types may depend on.
//!
//! λ_RTR does not let types depend on arbitrary expressions; instead a
//! "whitelist" grammar of *symbolic objects* (Fig. 2) names the obviously
//! safe terms: variables, field accesses and pairs. Theories extend the
//! grammar (§3.4): linear arithmetic adds integer literals, scalings and
//! sums (`o ::= … | n | n·o | o + o`) plus the `len` field, and the
//! bitvector theory adds bitvector literals and bitwise operators.
//!
//! Objects are kept in normal form by the smart constructors:
//! `(fst ⟨o₁,o₂⟩)` reduces to `o₁`, linear combinations are flattened and
//! sorted, and anything not liftable collapses to the null object [`Obj::Null`]
//! (propositions about which are vacuous, per §3.1).

use std::fmt;
use std::sync::Arc;

use rtr_solver::re::Regex;

use super::symbol::Symbol;

/// A field selector, applied to a path one step at a time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Field {
    /// First component of a pair.
    Fst,
    /// Second component of a pair.
    Snd,
    /// Length of a vector (theory extension, §3.4).
    Len,
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Fst => write!(f, "fst"),
            Field::Snd => write!(f, "snd"),
            Field::Len => write!(f, "len"),
        }
    }
}

/// A variable with a (possibly empty) chain of field accesses:
/// `x`, `(fst x)`, `(len (snd x))`, …
///
/// `fields[0]` is applied first (innermost).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Path {
    /// The root variable.
    pub base: Symbol,
    /// Field accesses, innermost first.
    pub fields: Vec<Field>,
}

impl Path {
    /// A bare variable path.
    pub fn var(base: Symbol) -> Path {
        Path {
            base,
            fields: Vec::new(),
        }
    }

    /// Extends the path with one more field access (outermost).
    pub fn field(mut self, f: Field) -> Path {
        self.fields.push(f);
        self
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print outermost-first: (len (fst x))
        for field in self.fields.iter().rev() {
            write!(f, "({field} ")?;
        }
        write!(f, "{}", self.base)?;
        for _ in &self.fields {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A linear combination `constant + Σ coeffᵢ·pathᵢ` over the integers.
///
/// Terms are sorted by path and contain no zero coefficients, so structural
/// equality is semantic equality.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct LinObj {
    /// The constant part.
    pub constant: i64,
    /// Sorted, coefficient-labelled paths.
    pub terms: Vec<(i64, Path)>,
}

impl LinObj {
    /// The constant linear object `n`.
    pub fn constant(n: i64) -> LinObj {
        LinObj {
            constant: n,
            terms: Vec::new(),
        }
    }

    /// The linear object `1·p`.
    pub fn path(p: Path) -> LinObj {
        LinObj {
            constant: 0,
            terms: vec![(1, p)],
        }
    }

    /// Returns the constant if the object has no variable terms.
    pub fn as_constant(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.constant)
    }

    fn add_term(&mut self, coeff: i64, p: Path) {
        if coeff == 0 {
            return;
        }
        match self.terms.binary_search_by(|(_, q)| q.cmp(&p)) {
            Ok(i) => {
                self.terms[i].0 = self.terms[i].0.saturating_add(coeff);
                if self.terms[i].0 == 0 {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (coeff, p)),
        }
    }

    /// Does the combination mention variable `x`? Allocation-free (used
    /// by `Env::unbind`'s theory-fact filters).
    pub fn mentions_var(&self, x: Symbol) -> bool {
        self.terms.iter().any(|(_, p)| p.base == x)
    }

    /// Pointwise sum.
    pub fn add(&self, other: &LinObj) -> LinObj {
        let mut out = self.clone();
        out.constant = out.constant.saturating_add(other.constant);
        for (c, p) in &other.terms {
            out.add_term(*c, p.clone());
        }
        out
    }

    /// Scales every coefficient by `k`.
    pub fn scale(&self, k: i64) -> LinObj {
        if k == 0 {
            return LinObj::constant(0);
        }
        LinObj {
            constant: self.constant.saturating_mul(k),
            terms: self
                .terms
                .iter()
                .map(|(c, p)| (c.saturating_mul(k), p.clone()))
                .collect(),
        }
    }
}

impl fmt::Display for LinObj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "{}", self.constant);
        }
        let mut first = true;
        for (c, p) in &self.terms {
            if first {
                if *c == 1 {
                    write!(f, "{p}")?;
                } else {
                    write!(f, "{c}·{p}")?;
                }
                first = false;
            } else if *c < 0 {
                write!(f, " - {}·{p}", -c)?;
            } else {
                write!(f, " + {c}·{p}")?;
            }
        }
        if self.constant != 0 {
            if self.constant < 0 {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

/// A bitvector-valued symbolic term over paths (theory extension, §2.2).
///
/// The bitvector theory is fixed-width; the checker's theory adapter
/// chooses the width (16 bits in the surface language, wide enough for the
/// paper's `Byte` refinement to be non-trivial).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BvObj {
    /// A bitvector literal.
    Const(u64),
    /// A program variable/path.
    Path(Path),
    /// Bitwise complement.
    Not(Box<BvObj>),
    /// Bitwise and.
    And(Box<BvObj>, Box<BvObj>),
    /// Bitwise or.
    Or(Box<BvObj>, Box<BvObj>),
    /// Bitwise exclusive or.
    Xor(Box<BvObj>, Box<BvObj>),
    /// Wrapping sum.
    Add(Box<BvObj>, Box<BvObj>),
    /// Wrapping difference.
    Sub(Box<BvObj>, Box<BvObj>),
    /// Wrapping product.
    Mul(Box<BvObj>, Box<BvObj>),
}

impl BvObj {
    /// Does the term mention variable `x`? Allocation-free (used by
    /// `Env::unbind`'s theory-fact filters).
    pub fn mentions_var(&self, x: Symbol) -> bool {
        match self {
            BvObj::Const(_) => false,
            BvObj::Path(p) => p.base == x,
            BvObj::Not(a) => a.mentions_var(x),
            BvObj::And(a, b)
            | BvObj::Or(a, b)
            | BvObj::Xor(a, b)
            | BvObj::Add(a, b)
            | BvObj::Sub(a, b)
            | BvObj::Mul(a, b) => a.mentions_var(x) || b.mentions_var(x),
        }
    }
}

impl fmt::Display for BvObj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BvObj::Const(v) => write!(f, "#x{v:x}"),
            BvObj::Path(p) => write!(f, "{p}"),
            BvObj::Not(a) => write!(f, "(bvnot {a})"),
            BvObj::And(a, b) => write!(f, "(bvand {a} {b})"),
            BvObj::Or(a, b) => write!(f, "(bvor {a} {b})"),
            BvObj::Xor(a, b) => write!(f, "(bvxor {a} {b})"),
            BvObj::Add(a, b) => write!(f, "(bvadd {a} {b})"),
            BvObj::Sub(a, b) => write!(f, "(bvsub {a} {b})"),
            BvObj::Mul(a, b) => write!(f, "(bvmul {a} {b})"),
        }
    }
}

/// A string-valued symbolic term: either a literal or a program path.
/// This is the term grammar of the regex theory (§3.4 recipe; the §7
/// "theories of regular expressions" extension).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StrObj {
    /// A string literal.
    Const(Arc<str>),
    /// A program variable/path.
    Path(Path),
}

impl StrObj {
    /// Does the term mention variable `x`?
    pub fn mentions_var(&self, x: Symbol) -> bool {
        matches!(self, StrObj::Path(p) if p.base == x)
    }
}

impl fmt::Display for StrObj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrObj::Const(s) => write!(f, "{s:?}"),
            StrObj::Path(p) => write!(f, "{p}"),
        }
    }
}

/// A symbolic object (Fig. 2, extended per §3.4).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Obj {
    /// The null object `∅`: a term the type system does not lift.
    Null,
    /// A variable/field path.
    Path(Path),
    /// A pair of objects `⟨o₁, o₂⟩`.
    Pair(Box<Obj>, Box<Obj>),
    /// A linear-arithmetic object (theory LI).
    Lin(LinObj),
    /// A bitvector object (theory BV).
    Bv(BvObj),
    /// A string literal (theory RE). Paths standing for strings stay
    /// [`Obj::Path`]; only constants need their own constructor.
    Str(Arc<str>),
    /// A regex literal (theory RE); lifted so tests like
    /// `(regexp-match? #rx"…" s)` can see which language they test even
    /// when the literal reaches the call through a `let` alias.
    Re(Arc<Regex>),
}

impl Obj {
    /// A bare variable object.
    pub fn var(x: Symbol) -> Obj {
        Obj::Path(Path::var(x))
    }

    /// An integer-literal object (theory LI's enriched `T-Int`).
    pub fn int(n: i64) -> Obj {
        Obj::Lin(LinObj::constant(n))
    }

    /// A bitvector-literal object.
    pub fn bv(v: u64) -> Obj {
        Obj::Bv(BvObj::Const(v))
    }

    /// A string-literal object (theory RE's enriched `T-Str`).
    pub fn str_const(s: impl Into<Arc<str>>) -> Obj {
        Obj::Str(s.into())
    }

    /// A regex-literal object.
    pub fn re(r: Arc<Regex>) -> Obj {
        Obj::Re(r)
    }

    /// A pair object.
    pub fn pair(o1: Obj, o2: Obj) -> Obj {
        if o1 == Obj::Null && o2 == Obj::Null {
            Obj::Null
        } else {
            Obj::Pair(Box::new(o1), Box::new(o2))
        }
    }

    /// Is this the null object?
    pub fn is_null(&self) -> bool {
        matches!(self, Obj::Null)
    }

    /// `(fst o)`, normalizing: `(fst ⟨a,b⟩) = a`.
    pub fn fst(self) -> Obj {
        match self {
            Obj::Pair(a, _) => *a,
            Obj::Path(p) => Obj::Path(p.field(Field::Fst)),
            _ => Obj::Null,
        }
    }

    /// `(snd o)`, normalizing.
    pub fn snd(self) -> Obj {
        match self {
            Obj::Pair(_, b) => *b,
            Obj::Path(p) => Obj::Path(p.field(Field::Snd)),
            _ => Obj::Null,
        }
    }

    /// `(len o)` — field paths for variables, computed for string
    /// literals (their length is a known integer).
    pub fn len(self) -> Obj {
        match self {
            Obj::Path(p) => Obj::Path(p.field(Field::Len)),
            Obj::Str(s) => Obj::int(s.chars().count() as i64),
            _ => Obj::Null,
        }
    }

    /// Coerces to a linear object if the term is integer-like.
    pub fn as_lin(&self) -> Option<LinObj> {
        match self {
            Obj::Lin(l) => Some(l.clone()),
            Obj::Path(p) => Some(LinObj::path(p.clone())),
            _ => None,
        }
    }

    /// Coerces to a bitvector object if the term is bitvector-like.
    pub fn as_bv(&self) -> Option<BvObj> {
        match self {
            Obj::Bv(b) => Some(b.clone()),
            Obj::Path(p) => Some(BvObj::Path(p.clone())),
            _ => None,
        }
    }

    /// Coerces to a string object if the term is string-like.
    pub fn as_str_obj(&self) -> Option<StrObj> {
        match self {
            Obj::Str(s) => Some(StrObj::Const(s.clone())),
            Obj::Path(p) => Some(StrObj::Path(p.clone())),
            _ => None,
        }
    }

    /// The regex literal, if the object is one.
    pub fn as_re(&self) -> Option<Arc<Regex>> {
        match self {
            Obj::Re(r) => Some(r.clone()),
            _ => None,
        }
    }

    /// `o₁ + o₂` when both sides are liftable integers, else `∅`.
    pub fn add(&self, other: &Obj) -> Obj {
        match (self.as_lin(), other.as_lin()) {
            (Some(a), Some(b)) => Obj::Lin(a.add(&b)),
            _ => Obj::Null,
        }
    }

    /// `o₁ - o₂` when both sides are liftable integers, else `∅`.
    pub fn sub(&self, other: &Obj) -> Obj {
        match (self.as_lin(), other.as_lin()) {
            (Some(a), Some(b)) => Obj::Lin(a.add(&b.scale(-1))),
            _ => Obj::Null,
        }
    }

    /// `k · o` when liftable, else `∅`.
    pub fn scale(&self, k: i64) -> Obj {
        match self.as_lin() {
            Some(l) => Obj::Lin(l.scale(k)),
            None => Obj::Null,
        }
    }

    /// `o₁ · o₂`: linear only when one side is a constant (§3.4's `n·o`).
    pub fn mul(&self, other: &Obj) -> Obj {
        match (self.as_lin(), other.as_lin()) {
            (Some(a), Some(b)) => match (a.as_constant(), b.as_constant()) {
                (Some(k), _) => Obj::Lin(b.scale(k)),
                (_, Some(k)) => Obj::Lin(a.scale(k)),
                _ => Obj::Null,
            },
            _ => Obj::Null,
        }
    }

    fn bv_binop(&self, other: &Obj, f: impl FnOnce(Box<BvObj>, Box<BvObj>) -> BvObj) -> Obj {
        match (self.as_bv(), other.as_bv()) {
            (Some(a), Some(b)) => Obj::Bv(f(Box::new(a), Box::new(b))),
            _ => Obj::Null,
        }
    }

    /// Bitwise and of two bitvector objects, else `∅`.
    pub fn bv_and(&self, other: &Obj) -> Obj {
        self.bv_binop(other, BvObj::And)
    }

    /// Bitwise or of two bitvector objects, else `∅`.
    pub fn bv_or(&self, other: &Obj) -> Obj {
        self.bv_binop(other, BvObj::Or)
    }

    /// Bitwise xor of two bitvector objects, else `∅`.
    pub fn bv_xor(&self, other: &Obj) -> Obj {
        self.bv_binop(other, BvObj::Xor)
    }

    /// Wrapping sum of two bitvector objects, else `∅`.
    pub fn bv_add(&self, other: &Obj) -> Obj {
        self.bv_binop(other, BvObj::Add)
    }

    /// Wrapping difference of two bitvector objects, else `∅`.
    pub fn bv_sub(&self, other: &Obj) -> Obj {
        self.bv_binop(other, BvObj::Sub)
    }

    /// Wrapping product of two bitvector objects, else `∅`.
    pub fn bv_mul(&self, other: &Obj) -> Obj {
        self.bv_binop(other, BvObj::Mul)
    }

    /// Bitwise complement of a bitvector object, else `∅`.
    pub fn bv_not(&self) -> Obj {
        match self.as_bv() {
            Some(a) => Obj::Bv(BvObj::Not(Box::new(a))),
            None => Obj::Null,
        }
    }

    /// Applies a field chain with normalization.
    pub fn apply_fields(self, fields: &[Field]) -> Obj {
        fields.iter().fold(self, |o, f| match f {
            Field::Fst => o.fst(),
            Field::Snd => o.snd(),
            Field::Len => o.len(),
        })
    }

    /// Capture-avoiding substitution `self[x ↦ rep]`, normalizing.
    ///
    /// Substituting the null object for a used variable collapses the
    /// affected (sub)object to `∅`, which in turn vacates any proposition
    /// built over it (§3.1).
    pub fn subst(&self, x: Symbol, rep: &Obj) -> Obj {
        match self {
            Obj::Null => Obj::Null,
            Obj::Path(p) => {
                if p.base == x {
                    rep.clone().apply_fields(&p.fields)
                } else {
                    self.clone()
                }
            }
            Obj::Pair(a, b) => Obj::pair(a.subst(x, rep), b.subst(x, rep)),
            Obj::Lin(l) => {
                let mut acc = LinObj::constant(l.constant);
                for (c, p) in &l.terms {
                    if p.base == x {
                        let repl = rep.clone().apply_fields(&p.fields);
                        match repl.as_lin() {
                            Some(rl) => acc = acc.add(&rl.scale(*c)),
                            None => return Obj::Null,
                        }
                    } else {
                        acc = acc.add(&LinObj {
                            constant: 0,
                            terms: vec![(*c, p.clone())],
                        });
                    }
                }
                Obj::Lin(acc)
            }
            Obj::Bv(b) => match subst_bv(b, x, rep) {
                Some(b) => Obj::Bv(b),
                None => Obj::Null,
            },
            Obj::Str(_) | Obj::Re(_) => self.clone(),
        }
    }

    /// Collects the free (base) variables.
    pub fn free_vars(&self, out: &mut std::collections::HashSet<Symbol>) {
        match self {
            Obj::Null | Obj::Str(_) | Obj::Re(_) => {}
            Obj::Path(p) => {
                out.insert(p.base);
            }
            Obj::Pair(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Obj::Lin(l) => {
                for (_, p) in &l.terms {
                    out.insert(p.base);
                }
            }
            Obj::Bv(b) => bv_free_vars(b, out),
        }
    }

    /// The first free variable satisfying `pred` (pre-order), if any —
    /// the allocation-free counterpart of [`Obj::free_vars`] for callers
    /// that only need one witness (e.g. alias resolution).
    pub fn find_var(&self, pred: &mut dyn FnMut(Symbol) -> bool) -> Option<Symbol> {
        match self {
            Obj::Null | Obj::Str(_) | Obj::Re(_) => None,
            Obj::Path(p) => pred(p.base).then_some(p.base),
            Obj::Pair(a, b) => a.find_var(pred).or_else(|| b.find_var(pred)),
            Obj::Lin(l) => l.terms.iter().map(|(_, p)| p.base).find(|x| pred(*x)),
            Obj::Bv(b) => bv_find_var(b, pred),
        }
    }

    /// Iterates over every path mentioned in the object.
    pub fn paths(&self, out: &mut Vec<Path>) {
        match self {
            Obj::Null | Obj::Str(_) | Obj::Re(_) => {}
            Obj::Path(p) => out.push(p.clone()),
            Obj::Pair(a, b) => {
                a.paths(out);
                b.paths(out);
            }
            Obj::Lin(l) => out.extend(l.terms.iter().map(|(_, p)| p.clone())),
            Obj::Bv(b) => bv_paths(b, out),
        }
    }
}

fn subst_bv(b: &BvObj, x: Symbol, rep: &Obj) -> Option<BvObj> {
    Some(match b {
        BvObj::Const(v) => BvObj::Const(*v),
        BvObj::Path(p) => {
            if p.base == x {
                rep.clone().apply_fields(&p.fields).as_bv()?
            } else {
                BvObj::Path(p.clone())
            }
        }
        BvObj::Not(a) => BvObj::Not(Box::new(subst_bv(a, x, rep)?)),
        BvObj::And(a, c) => BvObj::And(
            Box::new(subst_bv(a, x, rep)?),
            Box::new(subst_bv(c, x, rep)?),
        ),
        BvObj::Or(a, c) => BvObj::Or(
            Box::new(subst_bv(a, x, rep)?),
            Box::new(subst_bv(c, x, rep)?),
        ),
        BvObj::Xor(a, c) => BvObj::Xor(
            Box::new(subst_bv(a, x, rep)?),
            Box::new(subst_bv(c, x, rep)?),
        ),
        BvObj::Add(a, c) => BvObj::Add(
            Box::new(subst_bv(a, x, rep)?),
            Box::new(subst_bv(c, x, rep)?),
        ),
        BvObj::Sub(a, c) => BvObj::Sub(
            Box::new(subst_bv(a, x, rep)?),
            Box::new(subst_bv(c, x, rep)?),
        ),
        BvObj::Mul(a, c) => BvObj::Mul(
            Box::new(subst_bv(a, x, rep)?),
            Box::new(subst_bv(c, x, rep)?),
        ),
    })
}

fn bv_find_var(b: &BvObj, pred: &mut dyn FnMut(Symbol) -> bool) -> Option<Symbol> {
    match b {
        BvObj::Const(_) => None,
        BvObj::Path(p) => pred(p.base).then_some(p.base),
        BvObj::Not(a) => bv_find_var(a, pred),
        BvObj::And(a, b)
        | BvObj::Or(a, b)
        | BvObj::Xor(a, b)
        | BvObj::Add(a, b)
        | BvObj::Sub(a, b)
        | BvObj::Mul(a, b) => bv_find_var(a, pred).or_else(|| bv_find_var(b, pred)),
    }
}

fn bv_free_vars(b: &BvObj, out: &mut std::collections::HashSet<Symbol>) {
    match b {
        BvObj::Const(_) => {}
        BvObj::Path(p) => {
            out.insert(p.base);
        }
        BvObj::Not(a) => bv_free_vars(a, out),
        BvObj::And(a, b)
        | BvObj::Or(a, b)
        | BvObj::Xor(a, b)
        | BvObj::Add(a, b)
        | BvObj::Sub(a, b)
        | BvObj::Mul(a, b) => {
            bv_free_vars(a, out);
            bv_free_vars(b, out);
        }
    }
}

fn bv_paths(b: &BvObj, out: &mut Vec<Path>) {
    match b {
        BvObj::Const(_) => {}
        BvObj::Path(p) => out.push(p.clone()),
        BvObj::Not(a) => bv_paths(a, out),
        BvObj::And(a, b)
        | BvObj::Or(a, b)
        | BvObj::Xor(a, b)
        | BvObj::Add(a, b)
        | BvObj::Sub(a, b)
        | BvObj::Mul(a, b) => {
            bv_paths(a, out);
            bv_paths(b, out);
        }
    }
}

impl fmt::Display for Obj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obj::Null => write!(f, "∅"),
            Obj::Path(p) => write!(f, "{p}"),
            Obj::Pair(a, b) => write!(f, "⟨{a}, {b}⟩"),
            Obj::Lin(l) => write!(f, "{l}"),
            Obj::Bv(b) => write!(f, "{b}"),
            Obj::Str(s) => write!(f, "{s:?}"),
            Obj::Re(r) => write!(f, "#rx\"{r}\""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Symbol {
        Symbol::intern("x")
    }
    fn y() -> Symbol {
        Symbol::intern("y")
    }

    #[test]
    fn fst_of_pair_normalizes() {
        // (fst ⟨x, y⟩) = x  — the paper's normal-form example.
        let p = Obj::pair(Obj::var(x()), Obj::var(y()));
        assert_eq!(p.clone().fst(), Obj::var(x()));
        assert_eq!(p.snd(), Obj::var(y()));
    }

    #[test]
    fn fields_on_paths_extend() {
        let o = Obj::var(x()).fst().len();
        match &o {
            Obj::Path(p) => {
                assert_eq!(p.base, x());
                assert_eq!(p.fields, vec![Field::Fst, Field::Len]);
            }
            other => panic!("expected path, got {other}"),
        }
        assert_eq!(o.to_string(), "(len (fst x))");
    }

    #[test]
    fn unliftable_collapses_to_null() {
        assert!(Obj::int(3).fst().is_null());
        assert!(Obj::Null.len().is_null());
        assert!(Obj::int(1).add(&Obj::Null).is_null());
        assert!(Obj::pair(Obj::Null, Obj::Null).is_null());
    }

    #[test]
    fn linear_combination_flattens() {
        // 2x + 3 + x = 3x + 3
        let o = Obj::var(x()).scale(2).add(&Obj::int(3)).add(&Obj::var(x()));
        match o {
            Obj::Lin(l) => {
                assert_eq!(l.constant, 3);
                assert_eq!(l.terms, vec![(3, Path::var(x()))]);
            }
            other => panic!("expected lin, got {other}"),
        }
    }

    #[test]
    fn mul_requires_a_constant_side() {
        let two_x = Obj::int(2).mul(&Obj::var(x()));
        assert_eq!(two_x, Obj::var(x()).scale(2));
        assert!(Obj::var(x()).mul(&Obj::var(y())).is_null());
    }

    #[test]
    fn substitution_normalizes() {
        // ((fst p))[p ↦ ⟨x, y⟩] = x
        let p = Symbol::intern("p");
        let o = Obj::var(p).fst();
        let rep = Obj::pair(Obj::var(x()), Obj::var(y()));
        assert_eq!(o.subst(p, &rep), Obj::var(x()));
        // (x + 1)[x ↦ ∅] = ∅
        let o = Obj::var(x()).add(&Obj::int(1));
        assert!(o.subst(x(), &Obj::Null).is_null());
        // (x + 1)[x ↦ y + 2] = y + 3
        let o = Obj::var(x()).add(&Obj::int(1));
        let rep = Obj::var(y()).add(&Obj::int(2));
        assert_eq!(o.subst(x(), &rep), Obj::var(y()).add(&Obj::int(3)));
    }

    #[test]
    fn bv_substitution() {
        let o = Obj::var(x()).bv_and(&Obj::bv(0xff));
        let got = o.subst(x(), &Obj::bv(0x0f));
        assert_eq!(got, Obj::bv(0x0f).bv_and(&Obj::bv(0xff)));
        // substituting a pair into a bitvector position kills the object
        let bad = o.subst(x(), &Obj::pair(Obj::var(y()), Obj::var(y())));
        assert!(bad.is_null());
    }

    #[test]
    fn free_vars_and_paths() {
        let o = Obj::var(x()).add(&Obj::var(y()).len());
        let mut vars = std::collections::HashSet::new();
        o.free_vars(&mut vars);
        assert!(vars.contains(&x()) && vars.contains(&y()));
        let mut paths = Vec::new();
        o.paths(&mut paths);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Obj::Null.to_string(), "∅");
        assert_eq!(Obj::int(5).to_string(), "5");
        let o = Obj::var(x()).scale(2).add(&Obj::int(-1));
        assert_eq!(o.to_string(), "2·x - 1");
        assert_eq!(Obj::pair(Obj::var(x()), Obj::int(0)).to_string(), "⟨x, 0⟩");
    }
}
