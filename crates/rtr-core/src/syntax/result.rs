//! Type-results `(τ; ψ₊|ψ₋; o)` and their existential closure `∃x:τ.R`
//! (Fig. 2).
//!
//! A well-typed expression is assigned a *type-result*: its type, the
//! propositions learned when its value is used as a conditional test
//! (then/else propositions), and the symbolic object its value corresponds
//! to. Existential quantifiers capture dependencies on expressions that
//! have no symbolic object (à la Knowles & Flanagan, §3.1) — the
//! implementation propagates them upward rather than eagerly simplifying
//! (§4.1, "propagating existentials").

use std::fmt;

use super::obj::Obj;
use super::prop::Prop;
use super::symbol::Symbol;
use super::ty::Ty;

/// A type-result, possibly existentially quantified:
/// `∃ x̄:τ̄. (τ; ψ₊|ψ₋; o)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TyResult {
    /// Existential bindings scoping over the rest of the result.
    pub existentials: Vec<(Symbol, Ty)>,
    /// The expression's type.
    pub ty: Ty,
    /// The "then" proposition: holds when the value is non-`false`.
    pub then_p: Prop,
    /// The "else" proposition: holds when the value is `false`.
    pub else_p: Prop,
    /// The symbolic object of the value.
    pub obj: Obj,
}

impl TyResult {
    /// A full (non-quantified) result.
    pub fn new(ty: Ty, then_p: Prop, else_p: Prop, obj: Obj) -> TyResult {
        TyResult {
            existentials: Vec::new(),
            ty,
            then_p,
            else_p,
            obj,
        }
    }

    /// The conventional result for an expression only known to have type
    /// `ty`: trivial propositions, null object.
    pub fn of_type(ty: Ty) -> TyResult {
        TyResult::new(ty, Prop::TT, Prop::TT, Obj::Null)
    }

    /// The result of a value-producing term that is never `false`
    /// (then-prop `tt`, else-prop `ff`).
    pub fn truthy(ty: Ty, obj: Obj) -> TyResult {
        TyResult::new(ty, Prop::TT, Prop::FF, obj)
    }

    /// A copy with the existential prefix dropped — used when the binders
    /// have already been opened into the environment. Clones only the
    /// body fields (no `existentials` vector round trip).
    pub fn without_existentials(&self) -> TyResult {
        TyResult {
            existentials: Vec::new(),
            ty: self.ty.clone(),
            then_p: self.then_p.clone(),
            else_p: self.else_p.clone(),
            obj: self.obj.clone(),
        }
    }

    /// Prepends existential bindings (innermost last).
    pub fn with_existentials(mut self, mut binds: Vec<(Symbol, Ty)>) -> TyResult {
        binds.extend(self.existentials);
        self.existentials = binds;
        self
    }

    /// The lifting substitution `R[x ⟹τ o]` (§3.2, T-App):
    /// capture-avoiding substitution when `o` is non-null, existential
    /// quantification (with `x` renamed fresh) when it is.
    pub fn lift_subst(self, x: Symbol, arg_ty: &Ty, o: &Obj) -> TyResult {
        if o.is_null() {
            // ∃x:τ.R, renaming x to a fresh name so outer scopes never
            // collide with it. (The quantifier is kept even when x is
            // unused: the binder's *type* may carry facts about other
            // variables that downstream environments unfold.)
            let fresh = Symbol::fresh(x.as_str());
            let renamed = if self.mentions_var(x) {
                self.subst_obj(x, &Obj::var(fresh))
            } else {
                self
            };
            renamed.with_existentials(vec![(fresh, arg_ty.clone())])
        } else if self.mentions_var(x) {
            self.subst_obj(x, o)
        } else {
            // Substitution would be the identity; skip the deep rebuild.
            self
        }
    }

    /// Folds [`TyResult::lift_subst`] over a whole binder prefix
    /// (outermost binder first), as a module exit does when closing its
    /// trailing value over every definition:
    ///
    /// ```text
    /// binders.iter().rev().fold(self, |v, (x, τ, o)| v.lift_subst(x, τ, o))
    /// ```
    ///
    /// The one-at-a-time fold is quadratic: each `lift_subst` call scans
    /// the existential prefix accumulated by the binders after it, so a
    /// 50-definition module pays ~1250 quantifier-type traversals to
    /// close a value that mentions none of them. This batched form keeps
    /// a running set of the result's free object variables instead —
    /// each binder's mention check is a set lookup, each quantifier type
    /// is walked once when minted — and assembles the final prefix in
    /// one splice. The output is identical, fresh-name minting order
    /// included.
    pub fn lift_subst_all(self, binders: &[(Symbol, Ty, Obj)]) -> TyResult {
        if binders.is_empty() {
            return self;
        }
        // Everything `mentions_var` could see: quantifier types plus the
        // body fields. (Like `mentions_var`, deliberately not subtracting
        // the existential binders themselves — they are globally fresh,
        // so they never collide with a module binder.)
        let mut free: std::collections::HashSet<Symbol> = std::collections::HashSet::new();
        for (_, t) in &self.existentials {
            t.free_obj_vars(&mut free);
        }
        self.ty.free_obj_vars(&mut free);
        self.then_p.free_vars(&mut free);
        self.else_p.free_vars(&mut free);
        self.obj.free_vars(&mut free);

        let mut body = self;
        // Quantifiers are minted innermost binder first (matching the
        // fold) and reversed into source order at the end.
        let mut minted: Vec<(Symbol, Ty)> = Vec::with_capacity(binders.len());
        for (x, ty, o) in binders.iter().rev() {
            if o.is_null() {
                let fresh = Symbol::fresh(x.as_str());
                if free.contains(x) {
                    let rep = Obj::var(fresh);
                    body = body.subst_obj(*x, &rep);
                    for (_, t) in &mut minted {
                        if t.mentions_obj_var(*x) {
                            *t = t.subst_obj(*x, &rep);
                        }
                    }
                    free.remove(x);
                    free.insert(fresh);
                }
                ty.free_obj_vars(&mut free);
                minted.push((fresh, ty.clone()));
            } else if free.contains(x) {
                body = body.subst_obj(*x, o);
                for (_, t) in &mut minted {
                    if t.mentions_obj_var(*x) {
                        *t = t.subst_obj(*x, o);
                    }
                }
                free.remove(x);
                o.free_vars(&mut free);
            }
        }
        minted.reverse();
        body.with_existentials(minted)
    }

    /// Does `x` occur free anywhere substitution could reach? (A cheap
    /// over-approximation used to skip identity substitutions —
    /// early-exit and allocation-free, since `let` exits call this once
    /// per binder and nearly always get `false` under representative
    /// objects.)
    fn mentions_var(&self, x: Symbol) -> bool {
        self.existentials.iter().any(|(_, t)| t.mentions_obj_var(x))
            || self.ty.mentions_obj_var(x)
            || self.then_p.mentions_var(x)
            || self.else_p.mentions_var(x)
            || self.obj.find_var(&mut |v| v == x).is_some()
    }

    /// Capture-avoiding object substitution through the whole result.
    pub fn subst_obj(&self, x: Symbol, rep: &Obj) -> TyResult {
        for (b, _) in &self.existentials {
            if *b == x {
                // Shadowed: only the binder types to the left of the
                // shadowing binder could mention x, and binder types are
                // closed under our construction discipline; substitute
                // types defensively and stop.
                return TyResult {
                    existentials: self
                        .existentials
                        .iter()
                        .map(|(b, t)| (*b, t.subst_obj(x, rep)))
                        .collect(),
                    ty: self.ty.clone(),
                    then_p: self.then_p.clone(),
                    else_p: self.else_p.clone(),
                    obj: self.obj.clone(),
                };
            }
        }
        TyResult {
            existentials: self
                .existentials
                .iter()
                .map(|(b, t)| (*b, t.subst_obj(x, rep)))
                .collect(),
            ty: self.ty.subst_obj(x, rep),
            then_p: self.then_p.subst(x, rep),
            else_p: self.else_p.subst(x, rep),
            obj: self.obj.subst(x, rep),
        }
    }

    /// Substitutes type variables throughout.
    pub fn subst_tvars(&self, map: &std::collections::HashMap<Symbol, Ty>) -> TyResult {
        TyResult {
            existentials: self
                .existentials
                .iter()
                .map(|(b, t)| (*b, t.subst_tvars(map)))
                .collect(),
            ty: self.ty.subst_tvars(map),
            then_p: self.then_p.subst_tvars(map),
            else_p: self.else_p.subst_tvars(map),
            obj: self.obj.clone(),
        }
    }

    /// Collects free type variables.
    pub fn free_tvars(&self, out: &mut std::collections::HashSet<Symbol>) {
        for (_, t) in &self.existentials {
            t.free_tvars(out);
        }
        self.ty.free_tvars(out);
        self.then_p.free_tvars(out);
        self.else_p.free_tvars(out);
    }
}

impl fmt::Display for TyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (x, t) in &self.existentials {
            write!(f, "∃{x}:{t}. ")?;
        }
        write!(
            f,
            "({} ; {} | {} ; {})",
            self.ty, self.then_p, self.else_p, self.obj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::prop::LinCmp;

    fn x() -> Symbol {
        Symbol::intern("x")
    }

    #[test]
    fn lift_subst_with_object_substitutes() {
        // (Int; tt|ff; x+1)[x ⟹Int y] = (Int; tt|ff; y+1)
        let y = Symbol::intern("y");
        let r = TyResult::truthy(Ty::Int, Obj::var(x()).add(&Obj::int(1)));
        let got = r.lift_subst(x(), &Ty::Int, &Obj::var(y));
        assert!(got.existentials.is_empty());
        assert_eq!(got.obj, Obj::var(y).add(&Obj::int(1)));
    }

    #[test]
    fn lift_subst_with_null_quantifies() {
        // (Int; tt|ff; x+1)[x ⟹Int ∅] = ∃x′:Int.(Int; tt|ff; x′+1)
        let r = TyResult::truthy(Ty::Int, Obj::var(x()).add(&Obj::int(1)));
        let got = r.lift_subst(x(), &Ty::Int, &Obj::Null);
        assert_eq!(got.existentials.len(), 1);
        let (fresh, t) = &got.existentials[0];
        assert_eq!(*t, Ty::Int);
        assert_ne!(*fresh, x());
        assert_eq!(got.obj, Obj::var(*fresh).add(&Obj::int(1)));
    }

    #[test]
    fn lift_subst_all_matches_the_sequential_fold() {
        // A dependent prefix: w aliased to an object, v quantified but
        // mentioned, u quantified and unused — all three lift paths.
        let (u, v, w) = (
            Symbol::intern("lsa_u"),
            Symbol::intern("lsa_v"),
            Symbol::intern("lsa_w"),
        );
        let value = TyResult::truthy(Ty::Int, Obj::var(v).add(&Obj::var(w)));
        let binders = vec![
            (
                u,
                Ty::fun(vec![(x(), Ty::Int)], TyResult::of_type(Ty::Int)),
                Obj::Null,
            ),
            (v, Ty::Int, Obj::Null),
            (w, Ty::Int, Obj::var(v).add(&Obj::int(2))),
        ];
        let folded = binders
            .iter()
            .rev()
            .fold(value.clone(), |r, (x, t, o)| r.lift_subst(*x, t, o));
        let batched = value.lift_subst_all(&binders);
        // Fresh names differ between the two runs (global counter);
        // compare modulo the digits after '%'.
        let norm = |r: &TyResult| {
            let mut out = String::new();
            let mut skip = false;
            for ch in r.to_string().chars() {
                if ch == '%' {
                    skip = true;
                    out.push(ch);
                } else if skip && ch.is_ascii_digit() {
                    continue;
                } else {
                    skip = false;
                    out.push(ch);
                }
            }
            out
        };
        assert_eq!(norm(&folded), norm(&batched));
        assert_eq!(folded.existentials.len(), batched.existentials.len());
    }

    #[test]
    fn subst_respects_existential_shadowing() {
        let r = TyResult {
            existentials: vec![(x(), Ty::Int)],
            ty: Ty::Int,
            then_p: Prop::lin(Obj::var(x()), LinCmp::Le, Obj::int(3)),
            else_p: Prop::TT,
            obj: Obj::var(x()),
        };
        let got = r.subst_obj(x(), &Obj::int(7));
        // x is bound by the existential: body untouched.
        assert_eq!(got.then_p, r.then_p);
        assert_eq!(got.obj, r.obj);
    }

    #[test]
    fn display() {
        let r = TyResult::truthy(Ty::Int, Obj::int(1));
        assert_eq!(r.to_string(), "(Int ; tt | ff ; 1)");
    }
}
