//! Propositions (Fig. 2): the logic at the core of occurrence typing,
//! extended with aliasing and theory atoms.

use std::fmt;
use std::sync::Arc;

use rtr_solver::re::Regex;

use super::obj::{BvObj, LinObj, Obj, StrObj};
use super::symbol::Symbol;
use super::ty::Ty;

/// Comparison operator of a linear-arithmetic proposition (χ_LI, §3.4:
/// `o < o | o ≤ o`, closed under negation with `=`/`≠` for convenience).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LinCmp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≠`
    Ne,
}

/// A linear-arithmetic atom `lhs ⋈ rhs`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LinAtom {
    /// Left operand.
    pub lhs: LinObj,
    /// Comparison.
    pub cmp: LinCmp,
    /// Right operand.
    pub rhs: LinObj,
}

impl LinAtom {
    /// The negated atom (`¬(a < b)` is `b ≤ a`, etc.).
    pub fn negate(&self) -> LinAtom {
        match self.cmp {
            LinCmp::Lt => LinAtom {
                lhs: self.rhs.clone(),
                cmp: LinCmp::Le,
                rhs: self.lhs.clone(),
            },
            LinCmp::Le => LinAtom {
                lhs: self.rhs.clone(),
                cmp: LinCmp::Lt,
                rhs: self.lhs.clone(),
            },
            LinCmp::Eq => LinAtom {
                lhs: self.lhs.clone(),
                cmp: LinCmp::Ne,
                rhs: self.rhs.clone(),
            },
            LinCmp::Ne => LinAtom {
                lhs: self.lhs.clone(),
                cmp: LinCmp::Eq,
                rhs: self.rhs.clone(),
            },
        }
    }
}

impl LinAtom {
    /// Does either side mention variable `x`? Matches the variable set
    /// [`Prop::free_vars`] reports for the wrapped atom, without building
    /// a proposition or allocating.
    pub fn mentions_var(&self, x: Symbol) -> bool {
        self.lhs.mentions_var(x) || self.rhs.mentions_var(x)
    }
}

impl fmt::Display for LinAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.cmp {
            LinCmp::Lt => "<",
            LinCmp::Le => "≤",
            LinCmp::Eq => "=",
            LinCmp::Ne => "≠",
        };
        write!(f, "({} {op} {})", self.lhs, self.rhs)
    }
}

/// Comparison operator of a bitvector proposition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BvCmp {
    /// `=`
    Eq,
    /// unsigned `≤`
    Ule,
    /// unsigned `<`
    Ult,
}

/// A bitvector atom `lhs ⋈ rhs`, with a polarity so that the grammar is
/// closed under negation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BvAtomProp {
    /// Left operand.
    pub lhs: BvObj,
    /// Comparison.
    pub cmp: BvCmp,
    /// Right operand.
    pub rhs: BvObj,
    /// `false` for the negated atom.
    pub positive: bool,
}

impl BvAtomProp {
    /// The negated atom.
    pub fn negate(&self) -> BvAtomProp {
        BvAtomProp {
            positive: !self.positive,
            ..self.clone()
        }
    }
}

impl BvAtomProp {
    /// Does either side mention variable `x`? See [`LinAtom::mentions_var`].
    pub fn mentions_var(&self, x: Symbol) -> bool {
        self.lhs.mentions_var(x) || self.rhs.mentions_var(x)
    }
}

impl fmt::Display for BvAtomProp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.cmp {
            BvCmp::Eq => "=bv",
            BvCmp::Ule => "≤bv",
            BvCmp::Ult => "<bv",
        };
        if self.positive {
            write!(f, "({} {op} {})", self.lhs, self.rhs)
        } else {
            write!(f, "¬({} {op} {})", self.lhs, self.rhs)
        }
    }
}

/// A regex-membership atom `lhs ∈ L(re)` (theory RE, the §7 extension),
/// with a polarity so the grammar is closed under negation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StrAtomProp {
    /// The string-valued term being tested.
    pub lhs: StrObj,
    /// The regular expression (always a literal — regexes are not
    /// first-class in the theory).
    pub re: Arc<Regex>,
    /// `false` for the negated atom (`∉`).
    pub positive: bool,
}

impl StrAtomProp {
    /// The negated atom.
    pub fn negate(&self) -> StrAtomProp {
        StrAtomProp {
            positive: !self.positive,
            ..self.clone()
        }
    }
}

impl StrAtomProp {
    /// Does the subject mention variable `x`? See [`LinAtom::mentions_var`].
    pub fn mentions_var(&self, x: Symbol) -> bool {
        self.lhs.mentions_var(x)
    }
}

impl fmt::Display for StrAtomProp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = if self.positive { "=~" } else { "!~" };
        write!(f, "({} {op} #rx\"{}\")", self.lhs, self.re)
    }
}

/// A proposition ψ (Fig. 2).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Prop {
    /// The trivial proposition `tt`.
    TT,
    /// The absurd proposition `ff`.
    FF,
    /// `o ∈ τ` — object `o` has type `τ`.
    Is(Obj, Box<Ty>),
    /// `o ∉ τ` — object `o` does not have type `τ`.
    IsNot(Obj, Box<Ty>),
    /// Conjunction.
    And(Box<Prop>, Box<Prop>),
    /// Disjunction.
    Or(Box<Prop>, Box<Prop>),
    /// Object aliasing `o₁ ≡ o₂`.
    Alias(Obj, Obj),
    /// A linear-arithmetic theory atom.
    Lin(LinAtom),
    /// A bitvector theory atom.
    Bv(BvAtomProp),
    /// A regex-membership theory atom.
    Str(StrAtomProp),
}

impl Prop {
    /// `o ∈ τ`; vacuous (`tt`) when `o` is the null object (§3.1).
    pub fn is(o: Obj, ty: Ty) -> Prop {
        if o.is_null() {
            Prop::TT
        } else {
            Prop::Is(o, Box::new(ty))
        }
    }

    /// `o ∉ τ`; vacuous when `o` is the null object.
    pub fn is_not(o: Obj, ty: Ty) -> Prop {
        if o.is_null() {
            Prop::TT
        } else {
            Prop::IsNot(o, Box::new(ty))
        }
    }

    /// Conjunction with unit/absorption simplification.
    pub fn and(p: Prop, q: Prop) -> Prop {
        match (p, q) {
            (Prop::TT, q) => q,
            (p, Prop::TT) => p,
            (Prop::FF, _) | (_, Prop::FF) => Prop::FF,
            (p, q) => Prop::And(Box::new(p), Box::new(q)),
        }
    }

    /// Disjunction with unit/absorption simplification.
    pub fn or(p: Prop, q: Prop) -> Prop {
        match (p, q) {
            (Prop::FF, q) => q,
            (p, Prop::FF) => p,
            (Prop::TT, _) | (_, Prop::TT) => Prop::TT,
            (p, q) => Prop::Or(Box::new(p), Box::new(q)),
        }
    }

    /// Aliasing `o₁ ≡ o₂`; vacuous when either side is null.
    pub fn alias(o1: Obj, o2: Obj) -> Prop {
        if o1.is_null() || o2.is_null() {
            Prop::TT
        } else {
            Prop::Alias(o1, o2)
        }
    }

    /// A linear atom `lhs ⋈ rhs` over liftable objects; vacuous otherwise.
    pub fn lin(lhs: Obj, cmp: LinCmp, rhs: Obj) -> Prop {
        match (lhs.as_lin(), rhs.as_lin()) {
            (Some(lhs), Some(rhs)) => Prop::Lin(LinAtom { lhs, cmp, rhs }),
            _ => Prop::TT,
        }
    }

    /// A bitvector atom over liftable objects; vacuous otherwise.
    pub fn bv(lhs: Obj, cmp: BvCmp, rhs: Obj) -> Prop {
        match (lhs.as_bv(), rhs.as_bv()) {
            (Some(lhs), Some(rhs)) => Prop::Bv(BvAtomProp {
                lhs,
                cmp,
                rhs,
                positive: true,
            }),
            _ => Prop::TT,
        }
    }

    /// A regex-membership atom `lhs ∈ L(re)` when `lhs` is string-like and
    /// `re` is a regex literal; vacuous otherwise.
    pub fn re_match(lhs: &Obj, re: &Obj) -> Prop {
        match (lhs.as_str_obj(), re.as_re()) {
            (Some(lhs), Some(re)) => Prop::Str(StrAtomProp {
                lhs,
                re,
                positive: true,
            }),
            _ => Prop::TT,
        }
    }

    /// Logical negation, when representable in the grammar.
    ///
    /// Aliasing has no negative form, so propositions containing it return
    /// `None`; callers treat unnegatable propositions conservatively.
    pub fn negate(&self) -> Option<Prop> {
        Some(match self {
            Prop::TT => Prop::FF,
            Prop::FF => Prop::TT,
            Prop::Is(o, t) => Prop::IsNot(o.clone(), t.clone()),
            Prop::IsNot(o, t) => Prop::Is(o.clone(), t.clone()),
            Prop::And(p, q) => Prop::or(p.negate()?, q.negate()?),
            Prop::Or(p, q) => Prop::and(p.negate()?, q.negate()?),
            Prop::Alias(_, _) => return None,
            Prop::Lin(a) => Prop::Lin(a.negate()),
            Prop::Bv(a) => Prop::Bv(a.negate()),
            Prop::Str(a) => Prop::Str(a.negate()),
        })
    }

    /// Capture-avoiding substitution `self[x ↦ rep]`. Atoms whose objects
    /// collapse to null become `tt` and are thereby discarded (§3.1).
    pub fn subst(&self, x: Symbol, rep: &Obj) -> Prop {
        match self {
            Prop::TT => Prop::TT,
            Prop::FF => Prop::FF,
            Prop::Is(o, t) => Prop::is(o.subst(x, rep), t.subst_obj(x, rep)),
            Prop::IsNot(o, t) => Prop::is_not(o.subst(x, rep), t.subst_obj(x, rep)),
            Prop::And(p, q) => Prop::and(p.subst(x, rep), q.subst(x, rep)),
            Prop::Or(p, q) => Prop::or(p.subst(x, rep), q.subst(x, rep)),
            Prop::Alias(o1, o2) => Prop::alias(o1.subst(x, rep), o2.subst(x, rep)),
            Prop::Lin(a) => {
                let lhs = Obj::Lin(a.lhs.clone()).subst(x, rep);
                let rhs = Obj::Lin(a.rhs.clone()).subst(x, rep);
                Prop::lin(lhs, a.cmp, rhs)
            }
            Prop::Bv(a) => {
                let lhs = Obj::Bv(a.lhs.clone()).subst(x, rep);
                let rhs = Obj::Bv(a.rhs.clone()).subst(x, rep);
                let p = Prop::bv(lhs, a.cmp, rhs);
                if a.positive {
                    p
                } else {
                    match p {
                        Prop::Bv(atom) => Prop::Bv(atom.negate()),
                        other => other, // collapsed to TT
                    }
                }
            }
            Prop::Str(a) => {
                let lhs = match &a.lhs {
                    StrObj::Const(_) => return self.clone(),
                    StrObj::Path(p) => Obj::Path(p.clone()).subst(x, rep),
                };
                let p = Prop::re_match(&lhs, &Obj::Re(a.re.clone()));
                if a.positive {
                    p
                } else {
                    match p {
                        Prop::Str(atom) => Prop::Str(atom.negate()),
                        other => other, // collapsed to TT
                    }
                }
            }
        }
    }

    /// Substitutes type variables inside embedded types.
    pub fn subst_tvars(&self, map: &std::collections::HashMap<Symbol, Ty>) -> Prop {
        match self {
            Prop::Is(o, t) => Prop::Is(o.clone(), Box::new(t.subst_tvars(map))),
            Prop::IsNot(o, t) => Prop::IsNot(o.clone(), Box::new(t.subst_tvars(map))),
            Prop::And(p, q) => Prop::and(p.subst_tvars(map), q.subst_tvars(map)),
            Prop::Or(p, q) => Prop::or(p.subst_tvars(map), q.subst_tvars(map)),
            _ => self.clone(),
        }
    }

    /// Collects free type variables from embedded types.
    pub fn free_tvars(&self, out: &mut std::collections::HashSet<Symbol>) {
        match self {
            Prop::Is(_, t) | Prop::IsNot(_, t) => t.free_tvars(out),
            Prop::And(p, q) | Prop::Or(p, q) => {
                p.free_tvars(out);
                q.free_tvars(out);
            }
            _ => {}
        }
    }

    /// Does `x` occur free (object level)? Early-exit, allocation-free
    /// counterpart of [`Prop::free_vars`] — like it, looks only at
    /// proposition-level objects, not at types embedded in atoms.
    pub fn mentions_var(&self, x: Symbol) -> bool {
        let mut is_x = |v: Symbol| v == x;
        match self {
            Prop::TT | Prop::FF => false,
            Prop::Is(o, _) | Prop::IsNot(o, _) => o.find_var(&mut is_x).is_some(),
            Prop::And(p, q) | Prop::Or(p, q) => p.mentions_var(x) || q.mentions_var(x),
            Prop::Alias(o1, o2) => {
                o1.find_var(&mut is_x).is_some() || o2.find_var(&mut is_x).is_some()
            }
            Prop::Lin(a) => a.mentions_var(x),
            Prop::Bv(a) => a.mentions_var(x),
            Prop::Str(a) => a.mentions_var(x),
        }
    }

    /// Collects free (object-level) variables.
    pub fn free_vars(&self, out: &mut std::collections::HashSet<Symbol>) {
        match self {
            Prop::TT | Prop::FF => {}
            Prop::Is(o, _) | Prop::IsNot(o, _) => o.free_vars(out),
            Prop::And(p, q) | Prop::Or(p, q) => {
                p.free_vars(out);
                q.free_vars(out);
            }
            Prop::Alias(o1, o2) => {
                o1.free_vars(out);
                o2.free_vars(out);
            }
            Prop::Lin(a) => {
                Obj::Lin(a.lhs.clone()).free_vars(out);
                Obj::Lin(a.rhs.clone()).free_vars(out);
            }
            Prop::Bv(a) => {
                Obj::Bv(a.lhs.clone()).free_vars(out);
                Obj::Bv(a.rhs.clone()).free_vars(out);
            }
            Prop::Str(a) => {
                if let StrObj::Path(p) = &a.lhs {
                    out.insert(p.base);
                }
            }
        }
    }
}

impl fmt::Display for Prop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prop::TT => write!(f, "tt"),
            Prop::FF => write!(f, "ff"),
            Prop::Is(o, t) => write!(f, "{o} ∈ {t}"),
            Prop::IsNot(o, t) => write!(f, "{o} ∉ {t}"),
            Prop::And(p, q) => write!(f, "({p} ∧ {q})"),
            Prop::Or(p, q) => write!(f, "({p} ∨ {q})"),
            Prop::Alias(o1, o2) => write!(f, "{o1} ≡ {o2}"),
            Prop::Lin(a) => write!(f, "{a}"),
            Prop::Bv(a) => write!(f, "{a}"),
            Prop::Str(a) => write!(f, "{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Symbol {
        Symbol::intern("x")
    }
    fn y() -> Symbol {
        Symbol::intern("y")
    }

    #[test]
    fn null_objects_vacate_propositions() {
        assert_eq!(Prop::is(Obj::Null, Ty::Int), Prop::TT);
        assert_eq!(Prop::is_not(Obj::Null, Ty::Int), Prop::TT);
        assert_eq!(Prop::alias(Obj::Null, Obj::var(x())), Prop::TT);
        assert_eq!(Prop::lin(Obj::Null, LinCmp::Le, Obj::int(3)), Prop::TT);
    }

    #[test]
    fn connective_simplification() {
        let p = Prop::is(Obj::var(x()), Ty::Int);
        assert_eq!(Prop::and(Prop::TT, p.clone()), p);
        assert_eq!(Prop::and(Prop::FF, p.clone()), Prop::FF);
        assert_eq!(Prop::or(Prop::FF, p.clone()), p);
        assert_eq!(Prop::or(Prop::TT, p.clone()), Prop::TT);
    }

    #[test]
    fn negation_round_trips() {
        let p = Prop::and(
            Prop::is(Obj::var(x()), Ty::Int),
            Prop::lin(Obj::var(x()), LinCmp::Lt, Obj::var(y())),
        );
        let n = p.negate().unwrap();
        // ¬(x∈Int ∧ x<y) = x∉Int ∨ y≤x
        assert_eq!(
            n,
            Prop::or(
                Prop::is_not(Obj::var(x()), Ty::Int),
                Prop::lin(Obj::var(y()), LinCmp::Le, Obj::var(x())),
            )
        );
        assert_eq!(n.negate().unwrap().negate().unwrap(), n);
        // Aliases are not negatable.
        let a = Prop::alias(Obj::var(x()), Obj::var(y()));
        assert_eq!(a.negate(), None);
    }

    #[test]
    fn substitution_discards_collapsed_atoms() {
        // (x < 3)[x ↦ ∅] = tt
        let p = Prop::lin(Obj::var(x()), LinCmp::Lt, Obj::int(3));
        assert_eq!(p.subst(x(), &Obj::Null), Prop::TT);
        // (x < 3)[x ↦ y+1] = (y+1 < 3)
        let q = p.subst(x(), &Obj::var(y()).add(&Obj::int(1)));
        assert_eq!(
            q,
            Prop::lin(Obj::var(y()).add(&Obj::int(1)), LinCmp::Lt, Obj::int(3))
        );
    }

    #[test]
    fn substitution_reaches_embedded_types() {
        // (y ∈ {z:Int | z < x})[x ↦ 5]
        let z = Symbol::intern("z");
        let t = Ty::refine(
            z,
            Ty::Int,
            Prop::lin(Obj::var(z), LinCmp::Lt, Obj::var(x())),
        );
        let p = Prop::is(Obj::var(y()), t);
        let got = p.subst(x(), &Obj::int(5));
        let want = Prop::is(
            Obj::var(y()),
            Ty::refine(z, Ty::Int, Prop::lin(Obj::var(z), LinCmp::Lt, Obj::int(5))),
        );
        assert_eq!(got, want);
    }

    #[test]
    fn negated_bv_atom_substitution_keeps_polarity() {
        let p = Prop::Bv(BvAtomProp {
            lhs: BvObj::Path(crate::syntax::obj::Path::var(x())),
            cmp: BvCmp::Eq,
            rhs: BvObj::Const(0),
            positive: false,
        });
        let q = p.subst(x(), &Obj::bv(3));
        match q {
            Prop::Bv(a) => {
                assert!(!a.positive);
                assert_eq!(a.lhs, BvObj::Const(3));
            }
            other => panic!("expected bv atom, got {other}"),
        }
    }

    #[test]
    fn free_vars() {
        let p = Prop::or(
            Prop::is(Obj::var(x()), Ty::Int),
            Prop::lin(Obj::var(y()), LinCmp::Le, Obj::int(0)),
        );
        let mut fv = std::collections::HashSet::new();
        p.free_vars(&mut fv);
        assert!(fv.contains(&x()) && fv.contains(&y()));
    }
}
