//! Expressions and primitive operations (Fig. 2, extended with the
//! vector, bitvector, mutation and sequencing forms the implementation
//! needs for §4–§5).

use std::fmt;
use std::sync::Arc;

use super::symbol::Symbol;
use super::ty::Ty;
use crate::diag::NodeId;

/// Primitive operations `p` (Fig. 2/3, extended per §3.4 and §5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Prim {
    // -- type predicates ----------------------------------------------------
    /// `int?`
    IsInt,
    /// `bool?`
    IsBool,
    /// `pair?`
    IsPair,
    /// `vec?`
    IsVec,
    /// `proc?`
    IsProc,
    /// `bv?`
    IsBv,
    /// `not` (also the boolean test `false?`)
    Not,
    /// `zero?`
    IsZero,
    /// `even?`
    IsEven,
    /// `odd?`
    IsOdd,
    // -- integer arithmetic (theory LI enriched, §3.4) -----------------------
    /// `add1`
    Add1,
    /// `sub1`
    Sub1,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Times,
    /// `quotient` (truncating division) — deliberately *not* enriched
    /// with theory propositions: the §5.1 "unimplemented features"
    /// exemplar (division by a constant is linearizable, but the base
    /// environment does not teach the solver about it)
    Quotient,
    /// `remainder` — likewise un-enriched
    Remainder,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
    /// `=` on integers
    NumEq,
    /// `equal?` (enriched to emit integer equations on integer arguments,
    /// one of the paper's 36 enriched base functions)
    Equal,
    // -- vectors (§5) ---------------------------------------------------------
    /// `len`
    Len,
    /// `vec-ref` — dynamically bounds-checked
    VecRef,
    /// `unsafe-vec-ref` — raw access; out of bounds is undefined behaviour
    UnsafeVecRef,
    /// `safe-vec-ref` — statically verified access (refined index type)
    SafeVecRef,
    /// `vec-set!` — dynamically bounds-checked store
    VecSet,
    /// `unsafe-vec-set!` — raw store
    UnsafeVecSet,
    /// `safe-vec-set!` — statically verified store
    SafeVecSet,
    /// `make-vec`
    MakeVec,
    // -- strings and regexes (theory RE, the §7 extension) ---------------------
    /// `string?`
    IsStr,
    /// `string-length` (in characters; emits the `len` field object, so
    /// length facts flow into the linear theory)
    StrLen,
    /// `string=?`
    StrEq,
    /// `regexp-match?` — anchored match of a string against a regex
    /// literal; its then/else propositions are regex-membership atoms
    StrMatch,
    // -- bitvectors (§2.2) ----------------------------------------------------
    /// `bvand`
    BvAnd,
    /// `bvor`
    BvOr,
    /// `bvxor`
    BvXor,
    /// `bvnot`
    BvNot,
    /// `bvadd`
    BvAdd,
    /// `bvsub`
    BvSub,
    /// `bvmul`
    BvMul,
    /// `bv=`
    BvEq,
    /// `bv≤` (unsigned)
    BvUle,
    /// `bv<` (unsigned)
    BvUlt,
}

impl Prim {
    /// The surface-syntax name of the primitive.
    pub fn name(self) -> &'static str {
        match self {
            Prim::IsInt => "int?",
            Prim::IsBool => "bool?",
            Prim::IsPair => "pair?",
            Prim::IsVec => "vec?",
            Prim::IsProc => "proc?",
            Prim::IsBv => "bv?",
            Prim::Not => "not",
            Prim::IsZero => "zero?",
            Prim::IsEven => "even?",
            Prim::IsOdd => "odd?",
            Prim::Add1 => "add1",
            Prim::Sub1 => "sub1",
            Prim::Plus => "+",
            Prim::Minus => "-",
            Prim::Times => "*",
            Prim::Quotient => "quotient",
            Prim::Remainder => "remainder",
            Prim::Lt => "<",
            Prim::Le => "<=",
            Prim::Gt => ">",
            Prim::Ge => ">=",
            Prim::NumEq => "=",
            Prim::Equal => "equal?",
            Prim::Len => "len",
            Prim::VecRef => "vec-ref",
            Prim::UnsafeVecRef => "unsafe-vec-ref",
            Prim::SafeVecRef => "safe-vec-ref",
            Prim::VecSet => "vec-set!",
            Prim::UnsafeVecSet => "unsafe-vec-set!",
            Prim::SafeVecSet => "safe-vec-set!",
            Prim::MakeVec => "make-vec",
            Prim::IsStr => "string?",
            Prim::StrLen => "string-length",
            Prim::StrEq => "string=?",
            Prim::StrMatch => "regexp-match?",
            Prim::BvAnd => "bvand",
            Prim::BvOr => "bvor",
            Prim::BvXor => "bvxor",
            Prim::BvNot => "bvnot",
            Prim::BvAdd => "bvadd",
            Prim::BvSub => "bvsub",
            Prim::BvMul => "bvmul",
            Prim::BvEq => "bv=",
            Prim::BvUle => "bv<=",
            Prim::BvUlt => "bv<",
        }
    }

    /// All primitives, for table-driven tests.
    pub fn all() -> &'static [Prim] {
        &[
            Prim::IsInt,
            Prim::IsBool,
            Prim::IsPair,
            Prim::IsVec,
            Prim::IsProc,
            Prim::IsBv,
            Prim::Not,
            Prim::IsZero,
            Prim::IsEven,
            Prim::IsOdd,
            Prim::Add1,
            Prim::Sub1,
            Prim::Plus,
            Prim::Minus,
            Prim::Times,
            Prim::Quotient,
            Prim::Remainder,
            Prim::Lt,
            Prim::Le,
            Prim::Gt,
            Prim::Ge,
            Prim::NumEq,
            Prim::Equal,
            Prim::Len,
            Prim::VecRef,
            Prim::UnsafeVecRef,
            Prim::SafeVecRef,
            Prim::VecSet,
            Prim::UnsafeVecSet,
            Prim::SafeVecSet,
            Prim::MakeVec,
            Prim::IsStr,
            Prim::StrLen,
            Prim::StrEq,
            Prim::StrMatch,
            Prim::BvAnd,
            Prim::BvOr,
            Prim::BvXor,
            Prim::BvNot,
            Prim::BvAdd,
            Prim::BvSub,
            Prim::BvMul,
            Prim::BvEq,
            Prim::BvUle,
            Prim::BvUlt,
        ]
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A lambda abstraction with annotated parameters.
#[derive(Clone, PartialEq, Debug)]
pub struct Lambda {
    /// Annotated parameters.
    pub params: Vec<(Symbol, Ty)>,
    /// The body.
    pub body: Expr,
}

/// A λ_RTR expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Variable reference.
    Var(Symbol),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Bitvector literal (width fixed by the theory adapter).
    BvLit(u64),
    /// String literal.
    Str(std::sync::Arc<str>),
    /// Regex literal `#rx"…"` (pre-parsed; patterns are validated by the
    /// reader).
    ReLit(std::sync::Arc<rtr_solver::re::Regex>),
    /// A primitive operation as a value.
    Prim(Prim),
    /// Lambda abstraction `λ(x:τ …). e`.
    Lam(Arc<Lambda>),
    /// Application `(e e …)`.
    App(Box<Expr>, Vec<Expr>),
    /// Conditional `(if e e e)`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Local binding `(let (x e) e)`.
    Let(Symbol, Box<Expr>, Box<Expr>),
    /// Annotated recursive function `(letrec (f : τ (λ…)) e)` — needed for
    /// the loops `for`-macros expand into (§4.4).
    LetRec(Symbol, Ty, Arc<Lambda>, Box<Expr>),
    /// Pair construction `(cons e e)`.
    Cons(Box<Expr>, Box<Expr>),
    /// First projection `(fst e)`.
    Fst(Box<Expr>),
    /// Second projection `(snd e)`.
    Snd(Box<Expr>),
    /// Vector literal `(vec e …)`.
    VecLit(Vec<Expr>),
    /// Type ascription `(ann e τ)`.
    Ann(Box<Expr>, Ty),
    /// Runtime error `(error "msg")` — diverges with type ⊥.
    Error(String),
    /// Variable mutation `(set! x e)` (§4.2).
    Set(Symbol, Box<Expr>),
    /// Sequencing `(begin e …)`; value of the last expression.
    Begin(Vec<Expr>),
    /// A source-location wrapper: the elaborator tags every expression it
    /// produces with a [`NodeId`] into its span table, so diagnostics can
    /// point back into the surface source. Semantically transparent — the
    /// checker, evaluator and all structural traversals see through it.
    Spanned(NodeId, Box<Expr>),
}

impl Expr {
    /// Builds an application.
    pub fn app(f: Expr, args: Vec<Expr>) -> Expr {
        Expr::App(Box::new(f), args)
    }

    /// Applies a primitive.
    pub fn prim_app(p: Prim, args: Vec<Expr>) -> Expr {
        Expr::app(Expr::Prim(p), args)
    }

    /// Builds a conditional.
    pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(e))
    }

    /// Builds a let binding.
    pub fn let_(x: Symbol, rhs: Expr, body: Expr) -> Expr {
        Expr::Let(x, Box::new(rhs), Box::new(body))
    }

    /// Builds a lambda.
    pub fn lam(params: Vec<(Symbol, Ty)>, body: Expr) -> Expr {
        Expr::Lam(Arc::new(Lambda { params, body }))
    }

    /// Builds an annotation.
    pub fn ann(e: Expr, ty: Ty) -> Expr {
        Expr::Ann(Box::new(e), ty)
    }

    /// Wraps `e` with a span node.
    pub fn spanned(node: NodeId, e: Expr) -> Expr {
        Expr::Spanned(node, Box::new(e))
    }

    /// Sees through any [`Expr::Spanned`] wrappers to the underlying
    /// expression.
    pub fn peel_spans(&self) -> &Expr {
        let mut e = self;
        while let Expr::Spanned(_, inner) = e {
            e = inner;
        }
        e
    }

    /// The underlying expression plus the *innermost* span node wrapping
    /// it (the most precise source location), if any.
    pub fn peel_spans_with_node(&self) -> (&Expr, Option<NodeId>) {
        let mut e = self;
        let mut node = None;
        while let Expr::Spanned(n, inner) = e {
            node = Some(*n);
            e = inner;
        }
        (e, node)
    }

    /// The span node directly wrapping this expression, if any.
    pub fn span_node(&self) -> Option<NodeId> {
        self.peel_spans_with_node().1
    }

    /// A copy with every [`Expr::Spanned`] wrapper removed — used by
    /// tests and tools that compare elaborated trees structurally.
    pub fn strip_spans(&self) -> Expr {
        match self {
            Expr::Spanned(_, inner) => inner.strip_spans(),
            Expr::Var(_)
            | Expr::Int(_)
            | Expr::Bool(_)
            | Expr::BvLit(_)
            | Expr::Str(_)
            | Expr::ReLit(_)
            | Expr::Prim(_)
            | Expr::Error(_) => self.clone(),
            Expr::Lam(l) => Expr::lam(l.params.clone(), l.body.strip_spans()),
            Expr::App(f, args) => Expr::app(
                f.strip_spans(),
                args.iter().map(Expr::strip_spans).collect(),
            ),
            Expr::If(a, b, c) => Expr::if_(a.strip_spans(), b.strip_spans(), c.strip_spans()),
            Expr::Let(x, a, b) => Expr::let_(*x, a.strip_spans(), b.strip_spans()),
            Expr::LetRec(f, t, l, b) => Expr::LetRec(
                *f,
                t.clone(),
                Arc::new(Lambda {
                    params: l.params.clone(),
                    body: l.body.strip_spans(),
                }),
                Box::new(b.strip_spans()),
            ),
            Expr::Cons(a, b) => Expr::Cons(Box::new(a.strip_spans()), Box::new(b.strip_spans())),
            Expr::Fst(a) => Expr::Fst(Box::new(a.strip_spans())),
            Expr::Snd(a) => Expr::Snd(Box::new(a.strip_spans())),
            Expr::VecLit(es) => Expr::VecLit(es.iter().map(Expr::strip_spans).collect()),
            Expr::Ann(a, t) => Expr::ann(a.strip_spans(), t.clone()),
            Expr::Set(x, a) => Expr::Set(*x, Box::new(a.strip_spans())),
            Expr::Begin(es) => Expr::Begin(es.iter().map(Expr::strip_spans).collect()),
        }
    }

    /// Nesting depth, capped at `limit`: returns a value `> limit` as soon
    /// as the tree is deeper than `limit`, without recursing further (so
    /// the probe itself never risks a stack overflow). Used by the checker
    /// to decide whether a program needs the big-stack checking thread.
    pub fn depth_capped(&self, limit: usize) -> usize {
        // Span wrappers are transparent to the checker (peeled without a
        // judgment frame), so they do not count as a level.
        if let Expr::Spanned(_, inner) = self {
            return inner.depth_capped(limit);
        }
        if limit == 0 {
            return 1;
        }
        let child = |e: &Expr| e.depth_capped(limit - 1);
        1 + match self {
            Expr::Var(_)
            | Expr::Int(_)
            | Expr::Bool(_)
            | Expr::BvLit(_)
            | Expr::Str(_)
            | Expr::ReLit(_)
            | Expr::Prim(_)
            | Expr::Error(_) => 0,
            Expr::Lam(l) => child(&l.body),
            Expr::App(f, args) => child(f).max(args.iter().map(child).max().unwrap_or(0)),
            Expr::If(a, b, c) => child(a).max(child(b)).max(child(c)),
            Expr::Let(_, a, b) | Expr::Cons(a, b) => child(a).max(child(b)),
            Expr::LetRec(_, _, l, b) => child(&l.body).max(child(b)),
            Expr::Fst(a) | Expr::Snd(a) | Expr::Ann(a, _) | Expr::Set(_, a) => child(a),
            Expr::VecLit(es) | Expr::Begin(es) => es.iter().map(child).max().unwrap_or(0),
            Expr::Spanned(..) => unreachable!("handled above"),
        }
    }

    /// AST node count (used for corpus statistics and fuzz bounds).
    pub fn size(&self) -> usize {
        match self {
            Expr::Var(_)
            | Expr::Int(_)
            | Expr::Bool(_)
            | Expr::BvLit(_)
            | Expr::Str(_)
            | Expr::ReLit(_)
            | Expr::Prim(_)
            | Expr::Error(_) => 1,
            Expr::Lam(l) => 1 + l.body.size(),
            Expr::App(f, args) => 1 + f.size() + args.iter().map(Expr::size).sum::<usize>(),
            Expr::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
            Expr::Let(_, a, b) => 1 + a.size() + b.size(),
            Expr::LetRec(_, _, l, b) => 1 + l.body.size() + b.size(),
            Expr::Cons(a, b) => 1 + a.size() + b.size(),
            Expr::Fst(a) | Expr::Snd(a) | Expr::Ann(a, _) | Expr::Set(_, a) => 1 + a.size(),
            Expr::VecLit(es) | Expr::Begin(es) => 1 + es.iter().map(Expr::size).sum::<usize>(),
            // Transparent: a span wrapper is not an AST node of its own.
            Expr::Spanned(_, inner) => inner.size(),
        }
    }

    /// Collects free program variables.
    pub fn free_vars(&self, out: &mut std::collections::HashSet<Symbol>) {
        fn go(e: &Expr, bound: &mut Vec<Symbol>, out: &mut std::collections::HashSet<Symbol>) {
            match e {
                Expr::Var(x) => {
                    if !bound.contains(x) {
                        out.insert(*x);
                    }
                }
                Expr::Int(_)
                | Expr::Bool(_)
                | Expr::BvLit(_)
                | Expr::Str(_)
                | Expr::ReLit(_)
                | Expr::Prim(_)
                | Expr::Error(_) => {}
                Expr::Lam(l) => {
                    let n = bound.len();
                    bound.extend(l.params.iter().map(|(x, _)| *x));
                    go(&l.body, bound, out);
                    bound.truncate(n);
                }
                Expr::App(f, args) => {
                    go(f, bound, out);
                    for a in args {
                        go(a, bound, out);
                    }
                }
                Expr::If(a, b, c) => {
                    go(a, bound, out);
                    go(b, bound, out);
                    go(c, bound, out);
                }
                Expr::Let(x, rhs, body) => {
                    go(rhs, bound, out);
                    bound.push(*x);
                    go(body, bound, out);
                    bound.pop();
                }
                Expr::LetRec(f, _, l, body) => {
                    bound.push(*f);
                    let n = bound.len();
                    bound.extend(l.params.iter().map(|(x, _)| *x));
                    go(&l.body, bound, out);
                    bound.truncate(n);
                    go(body, bound, out);
                    bound.pop();
                }
                Expr::Cons(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Expr::Fst(a) | Expr::Snd(a) | Expr::Ann(a, _) => go(a, bound, out),
                Expr::Set(x, a) => {
                    if !bound.contains(x) {
                        out.insert(*x);
                    }
                    go(a, bound, out);
                }
                Expr::VecLit(es) | Expr::Begin(es) => {
                    for e in es {
                        go(e, bound, out);
                    }
                }
                Expr::Spanned(_, inner) => go(inner, bound, out),
            }
        }
        go(self, &mut Vec::new(), out);
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Int(n) => write!(f, "{n}"),
            Expr::Bool(true) => write!(f, "#t"),
            Expr::Bool(false) => write!(f, "#f"),
            Expr::BvLit(v) => write!(f, "#x{v:x}"),
            Expr::Str(s) => write!(f, "{s:?}"),
            Expr::ReLit(r) => write!(f, "#rx\"{r}\""),
            Expr::Prim(p) => write!(f, "{p}"),
            Expr::Lam(l) => {
                write!(f, "(λ (")?;
                for (i, (x, t)) in l.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "[{x} : {t}]")?;
                }
                write!(f, ") {})", l.body)
            }
            Expr::App(fun, args) => {
                write!(f, "({fun}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            Expr::If(a, b, c) => write!(f, "(if {a} {b} {c})"),
            Expr::Let(x, rhs, body) => write!(f, "(let ({x} {rhs}) {body})"),
            Expr::LetRec(name, ty, l, body) => {
                write!(
                    f,
                    "(letrec ({name} : {ty} {}) {body})",
                    Expr::Lam(l.clone())
                )
            }
            Expr::Cons(a, b) => write!(f, "(cons {a} {b})"),
            Expr::Fst(a) => write!(f, "(fst {a})"),
            Expr::Snd(a) => write!(f, "(snd {a})"),
            Expr::VecLit(es) => {
                write!(f, "(vec")?;
                for e in es {
                    write!(f, " {e}")?;
                }
                write!(f, ")")
            }
            Expr::Ann(e, t) => write!(f, "(ann {e} {t})"),
            Expr::Error(msg) => write!(f, "(error {msg:?})"),
            Expr::Set(x, e) => write!(f, "(set! {x} {e})"),
            Expr::Begin(es) => {
                write!(f, "(begin")?;
                for e in es {
                    write!(f, " {e}")?;
                }
                write!(f, ")")
            }
            Expr::Spanned(_, inner) => write!(f, "{inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Symbol {
        Symbol::intern("x")
    }

    #[test]
    fn prim_names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in Prim::all() {
            assert!(seen.insert(p.name()), "duplicate prim name {}", p.name());
        }
    }

    #[test]
    fn free_vars_respect_binders() {
        let y = Symbol::intern("y");
        // (let (x y) (λ(y:Int) (+ x y)))
        let e = Expr::let_(
            x(),
            Expr::Var(y),
            Expr::lam(
                vec![(y, Ty::Int)],
                Expr::prim_app(Prim::Plus, vec![Expr::Var(x()), Expr::Var(y)]),
            ),
        );
        let mut fv = std::collections::HashSet::new();
        e.free_vars(&mut fv);
        assert!(fv.contains(&y)); // the outer y
        assert!(!fv.contains(&x()));
    }

    #[test]
    fn set_target_is_free() {
        let e = Expr::Set(x(), Box::new(Expr::Int(1)));
        let mut fv = std::collections::HashSet::new();
        e.free_vars(&mut fv);
        assert!(fv.contains(&x()));
    }

    #[test]
    fn display_round_trip_shapes() {
        let e = Expr::if_(
            Expr::prim_app(Prim::IsInt, vec![Expr::Var(x())]),
            Expr::Int(1),
            Expr::Int(0),
        );
        assert_eq!(e.to_string(), "(if (int? x) 1 0)");
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::prim_app(Prim::Plus, vec![Expr::Int(1), Expr::Int(2)]);
        assert_eq!(e.size(), 4);
    }
}
