//! Types (Fig. 2): base types, pairs, vectors, ad-hoc unions, dependent
//! function types, refinement types, and the polymorphism used by the
//! implementation (§4.3).

use std::fmt;

use super::obj::Obj;
use super::prop::Prop;
use super::result::TyResult;
use super::symbol::Symbol;

/// A λ_RTR type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// The universal type `⊤` of all well-typed values.
    Top,
    /// Integers `I`.
    Int,
    /// The singleton type of `true`.
    True,
    /// The singleton type of `false`.
    False,
    /// The unit value produced by effects such as `set!`/`vec-set!`
    /// (implementation extension; the calculus does not need it).
    Unit,
    /// Fixed-width bitvectors (theory extension, §2.2).
    BitVec,
    /// Strings (theory RE extension, §7).
    Str,
    /// Regex literals (theory RE extension, §7); not first-class in the
    /// theory, but regexes are values, so they need a type.
    Regex,
    /// Pair type `τ × σ`.
    Pair(Box<Ty>, Box<Ty>),
    /// Vector type `(Vecof τ)` (implementation extension, §5). Invariant
    /// in its element type because vectors are mutable.
    Vec(Box<Ty>),
    /// Ad-hoc ("true") union `(⋃ τ…)`. The empty union is bottom `⊥`.
    Union(Vec<Ty>),
    /// Dependent function type `(x:τ, …) → R`; parameter names scope over
    /// later parameter types and the range.
    Fun(Box<FunTy>),
    /// Refinement type `{x:τ | ψ}`.
    Refine(Box<RefineTy>),
    /// A type variable, bound by an enclosing [`Ty::Poly`] (§4.3).
    TVar(Symbol),
    /// A polymorphic function type `∀ Ā. τ` (§4.3); instantiated by local
    /// type inference at application sites.
    Poly(Box<PolyTy>),
}

/// A (possibly multi-parameter) dependent function type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FunTy {
    /// Named parameters; each name is in scope in subsequent parameter
    /// types and in the range.
    pub params: Vec<(Symbol, Ty)>,
    /// The dependent range.
    pub range: TyResult,
}

/// A refinement type `{x:τ | ψ}`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RefineTy {
    /// The refinement variable, bound in `prop`.
    pub var: Symbol,
    /// The refined (base) type.
    pub base: Ty,
    /// The refinement proposition.
    pub prop: Prop,
}

/// A polymorphic type `∀ Ā. body`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PolyTy {
    /// Bound type variables.
    pub vars: Vec<Symbol>,
    /// The quantified body (usually a [`Ty::Fun`]).
    pub body: Ty,
}

impl Ty {
    /// The boolean type `B = (⋃ T F)`.
    pub fn bool_ty() -> Ty {
        Ty::Union(vec![Ty::True, Ty::False])
    }

    /// The uninhabited bottom type `⊥ = (⋃)`.
    pub fn bot() -> Ty {
        Ty::Union(Vec::new())
    }

    /// A pair type.
    pub fn pair(a: Ty, b: Ty) -> Ty {
        Ty::Pair(Box::new(a), Box::new(b))
    }

    /// A vector type.
    pub fn vec(elem: Ty) -> Ty {
        Ty::Vec(Box::new(elem))
    }

    /// A refinement type `{var:base | prop}`; collapses to `base` when the
    /// proposition is trivial.
    pub fn refine(var: Symbol, base: Ty, prop: Prop) -> Ty {
        if prop == Prop::TT {
            base
        } else {
            Ty::Refine(Box::new(RefineTy { var, base, prop }))
        }
    }

    /// A function type.
    pub fn fun(params: Vec<(Symbol, Ty)>, range: TyResult) -> Ty {
        Ty::Fun(Box::new(FunTy { params, range }))
    }

    /// A simple (non-dependent) function type with trivial propositions.
    pub fn simple_fun(doms: Vec<Ty>, rng: Ty) -> Ty {
        let params = doms
            .into_iter()
            .enumerate()
            .map(|(i, t)| (Symbol::fresh(&format!("arg{i}")), t))
            .collect();
        Ty::fun(params, TyResult::of_type(rng))
    }

    /// A polymorphic type.
    pub fn poly(vars: Vec<Symbol>, body: Ty) -> Ty {
        if vars.is_empty() {
            body
        } else {
            Ty::Poly(Box::new(PolyTy { vars, body }))
        }
    }

    /// Is this syntactically the bottom type?
    pub fn is_bot(&self) -> bool {
        matches!(self, Ty::Union(ts) if ts.is_empty())
    }

    /// Flattens nested unions and deduplicates members.
    pub fn union_of(members: Vec<Ty>) -> Ty {
        let mut flat: Vec<Ty> = Vec::new();
        fn push(flat: &mut Vec<Ty>, t: Ty) {
            match t {
                Ty::Union(ts) => {
                    for t in ts {
                        push(flat, t);
                    }
                }
                t => {
                    if !flat.contains(&t) {
                        flat.push(t);
                    }
                }
            }
        }
        for t in members {
            push(&mut flat, t);
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Ty::Union(flat)
        }
    }

    /// Substitutes object `rep` for variable `x` in every proposition and
    /// dependent position, capture-avoidingly.
    pub fn subst_obj(&self, x: Symbol, rep: &Obj) -> Ty {
        match self {
            Ty::Top
            | Ty::Int
            | Ty::True
            | Ty::False
            | Ty::Unit
            | Ty::BitVec
            | Ty::Str
            | Ty::Regex
            | Ty::TVar(_) => self.clone(),
            Ty::Pair(a, b) => Ty::pair(a.subst_obj(x, rep), b.subst_obj(x, rep)),
            Ty::Vec(e) => Ty::vec(e.subst_obj(x, rep)),
            Ty::Union(ts) => Ty::Union(ts.iter().map(|t| t.subst_obj(x, rep)).collect()),
            Ty::Fun(f) => {
                let mut f = (**f).clone();
                let mut shadowed = false;
                for i in 0..f.params.len() {
                    if shadowed {
                        break;
                    }
                    f.params[i].1 = f.params[i].1.subst_obj(x, rep);
                    if f.params[i].0 == x {
                        shadowed = true;
                    }
                }
                if !shadowed {
                    f.range = f.range.subst_obj(x, rep);
                }
                Ty::Fun(Box::new(f))
            }
            Ty::Refine(r) => {
                if r.var == x {
                    Ty::refine(r.var, r.base.subst_obj(x, rep), r.prop.clone())
                } else {
                    Ty::refine(r.var, r.base.subst_obj(x, rep), r.prop.subst(x, rep))
                }
            }
            Ty::Poly(p) => Ty::poly(p.vars.clone(), p.body.subst_obj(x, rep)),
        }
    }

    /// Substitutes types for type variables (instantiation, §4.3).
    pub fn subst_tvars(&self, map: &std::collections::HashMap<Symbol, Ty>) -> Ty {
        match self {
            Ty::TVar(a) => map.get(a).cloned().unwrap_or_else(|| self.clone()),
            Ty::Top
            | Ty::Int
            | Ty::True
            | Ty::False
            | Ty::Unit
            | Ty::BitVec
            | Ty::Str
            | Ty::Regex => self.clone(),
            Ty::Pair(a, b) => Ty::pair(a.subst_tvars(map), b.subst_tvars(map)),
            Ty::Vec(e) => Ty::vec(e.subst_tvars(map)),
            Ty::Union(ts) => Ty::Union(ts.iter().map(|t| t.subst_tvars(map)).collect()),
            Ty::Fun(f) => {
                let params = f
                    .params
                    .iter()
                    .map(|(x, t)| (*x, t.subst_tvars(map)))
                    .collect();
                Ty::fun(params, f.range.subst_tvars(map))
            }
            Ty::Refine(r) => Ty::refine(r.var, r.base.subst_tvars(map), r.prop.subst_tvars(map)),
            Ty::Poly(p) => {
                let mut inner = map.clone();
                for v in &p.vars {
                    inner.remove(v);
                }
                Ty::poly(p.vars.clone(), p.body.subst_tvars(&inner))
            }
        }
    }

    /// Collects free type variables.
    pub fn free_tvars(&self, out: &mut std::collections::HashSet<Symbol>) {
        match self {
            Ty::TVar(a) => {
                out.insert(*a);
            }
            Ty::Top
            | Ty::Int
            | Ty::True
            | Ty::False
            | Ty::Unit
            | Ty::BitVec
            | Ty::Str
            | Ty::Regex => {}
            Ty::Pair(a, b) => {
                a.free_tvars(out);
                b.free_tvars(out);
            }
            Ty::Vec(e) => e.free_tvars(out),
            Ty::Union(ts) => ts.iter().for_each(|t| t.free_tvars(out)),
            Ty::Fun(f) => {
                for (_, t) in &f.params {
                    t.free_tvars(out);
                }
                f.range.free_tvars(out);
            }
            Ty::Refine(r) => {
                r.base.free_tvars(out);
                r.prop.free_tvars(out);
            }
            Ty::Poly(p) => {
                let mut inner = std::collections::HashSet::new();
                p.body.free_tvars(&mut inner);
                for v in &p.vars {
                    inner.remove(v);
                }
                out.extend(inner);
            }
        }
    }

    /// Collects free *object-level* variables (refinement propositions and
    /// dependent function positions), respecting binders.
    pub fn free_obj_vars(&self, out: &mut std::collections::HashSet<Symbol>) {
        match self {
            Ty::Top
            | Ty::Int
            | Ty::True
            | Ty::False
            | Ty::Unit
            | Ty::BitVec
            | Ty::Str
            | Ty::Regex
            | Ty::TVar(_) => {}
            Ty::Pair(a, b) => {
                a.free_obj_vars(out);
                b.free_obj_vars(out);
            }
            Ty::Vec(e) => e.free_obj_vars(out),
            Ty::Union(ts) => ts.iter().for_each(|t| t.free_obj_vars(out)),
            Ty::Refine(r) => {
                r.base.free_obj_vars(out);
                let mut inner = std::collections::HashSet::new();
                r.prop.free_vars(&mut inner);
                inner.remove(&r.var);
                out.extend(inner);
            }
            Ty::Fun(f) => {
                let mut inner = std::collections::HashSet::new();
                for (_, d) in &f.params {
                    d.free_obj_vars(&mut inner);
                }
                f.range.ty.free_obj_vars(&mut inner);
                f.range.then_p.free_vars(&mut inner);
                f.range.else_p.free_vars(&mut inner);
                for (x, _) in &f.params {
                    inner.remove(x);
                }
                out.extend(inner);
            }
            Ty::Poly(p) => p.body.free_obj_vars(out),
        }
    }

    /// Does `x` occur free as an *object-level* variable? Early-exit,
    /// allocation-free counterpart of [`Ty::free_obj_vars`] (same binder
    /// discipline: refinement variables and function parameters shadow).
    pub fn mentions_obj_var(&self, x: Symbol) -> bool {
        match self {
            Ty::Top
            | Ty::Int
            | Ty::True
            | Ty::False
            | Ty::Unit
            | Ty::BitVec
            | Ty::Str
            | Ty::Regex
            | Ty::TVar(_) => false,
            Ty::Pair(a, b) => a.mentions_obj_var(x) || b.mentions_obj_var(x),
            Ty::Vec(e) => e.mentions_obj_var(x),
            Ty::Union(ts) => ts.iter().any(|t| t.mentions_obj_var(x)),
            Ty::Refine(r) => r.base.mentions_obj_var(x) || (r.var != x && r.prop.mentions_var(x)),
            Ty::Fun(f) => {
                if f.params.iter().any(|(p, _)| *p == x) {
                    return false;
                }
                f.params.iter().any(|(_, d)| d.mentions_obj_var(x))
                    || f.range.ty.mentions_obj_var(x)
                    || f.range.then_p.mentions_var(x)
                    || f.range.else_p.mentions_var(x)
            }
            Ty::Poly(p) => p.body.mentions_obj_var(x),
        }
    }

    /// Size of the type term (used to bound recursion in tests/fuzzing).
    pub fn size(&self) -> usize {
        match self {
            Ty::Top
            | Ty::Int
            | Ty::True
            | Ty::False
            | Ty::Unit
            | Ty::BitVec
            | Ty::Str
            | Ty::Regex
            | Ty::TVar(_) => 1,
            Ty::Pair(a, b) => 1 + a.size() + b.size(),
            Ty::Vec(e) => 1 + e.size(),
            Ty::Union(ts) => 1 + ts.iter().map(Ty::size).sum::<usize>(),
            Ty::Fun(f) => {
                1 + f.params.iter().map(|(_, t)| t.size()).sum::<usize>() + f.range.ty.size()
            }
            Ty::Refine(r) => 1 + r.base.size(),
            Ty::Poly(p) => 1 + p.body.size(),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Top => write!(f, "⊤"),
            Ty::Int => write!(f, "Int"),
            Ty::True => write!(f, "True"),
            Ty::False => write!(f, "False"),
            Ty::Unit => write!(f, "Unit"),
            Ty::BitVec => write!(f, "BitVec"),
            Ty::Str => write!(f, "Str"),
            Ty::Regex => write!(f, "Regex"),
            Ty::Pair(a, b) => write!(f, "({a} × {b})"),
            Ty::Vec(e) => write!(f, "(Vecof {e})"),
            Ty::Union(ts) if ts.is_empty() => write!(f, "⊥"),
            Ty::Union(ts) if ts.len() == 2 && ts[0] == Ty::True && ts[1] == Ty::False => {
                write!(f, "Bool")
            }
            Ty::Union(ts) => {
                write!(f, "(U")?;
                for t in ts {
                    write!(f, " {t}")?;
                }
                write!(f, ")")
            }
            Ty::Fun(fun) => {
                write!(f, "(")?;
                for (i, (x, t)) in fun.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "[{x} : {t}]")?;
                }
                write!(f, " → {})", fun.range)
            }
            Ty::Refine(r) => write!(f, "{{{} : {} | {}}}", r.var, r.base, r.prop),
            Ty::TVar(a) => write!(f, "{a}"),
            Ty::Poly(p) => {
                write!(f, "(∀ (")?;
                for (i, v) in p.vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ") {})", p.body)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::prop::{LinCmp, Prop};

    fn x() -> Symbol {
        Symbol::intern("x")
    }

    #[test]
    fn union_flattening() {
        let t = Ty::union_of(vec![
            Ty::Int,
            Ty::Union(vec![Ty::True, Ty::Union(vec![Ty::False, Ty::Int])]),
        ]);
        assert_eq!(t, Ty::Union(vec![Ty::Int, Ty::True, Ty::False]));
        assert_eq!(Ty::union_of(vec![Ty::Int]), Ty::Int);
        assert!(Ty::union_of(vec![]).is_bot());
    }

    #[test]
    fn refine_collapses_trivial() {
        assert_eq!(Ty::refine(x(), Ty::Int, Prop::TT), Ty::Int);
        let r = Ty::refine(
            x(),
            Ty::Int,
            Prop::lin(Obj::var(x()), LinCmp::Le, Obj::int(5)),
        );
        assert!(matches!(r, Ty::Refine(_)));
    }

    #[test]
    fn subst_respects_refinement_binder() {
        // {x:Int | x ≤ y}[y ↦ 3] rewrites y; [x ↦ 3] must not touch the
        // bound occurrence.
        let y = Symbol::intern("y");
        let t = Ty::refine(
            x(),
            Ty::Int,
            Prop::lin(Obj::var(x()), LinCmp::Le, Obj::var(y)),
        );
        let t2 = t.subst_obj(y, &Obj::int(3));
        assert_eq!(
            t2,
            Ty::refine(
                x(),
                Ty::Int,
                Prop::lin(Obj::var(x()), LinCmp::Le, Obj::int(3))
            )
        );
        let t3 = t.subst_obj(x(), &Obj::int(0));
        assert_eq!(t3, t);
    }

    #[test]
    fn tvar_substitution() {
        let a = Symbol::intern("A");
        let t = Ty::vec(Ty::TVar(a));
        let mut map = std::collections::HashMap::new();
        map.insert(a, Ty::Int);
        assert_eq!(t.subst_tvars(&map), Ty::vec(Ty::Int));
        // Bound tvars are not substituted.
        let p = Ty::poly(vec![a], Ty::TVar(a));
        assert_eq!(p.subst_tvars(&map), p);
    }

    #[test]
    fn free_tvars() {
        let a = Symbol::intern("A");
        let b = Symbol::intern("B");
        let t = Ty::pair(Ty::TVar(a), Ty::poly(vec![b], Ty::TVar(b)));
        let mut fv = std::collections::HashSet::new();
        t.free_tvars(&mut fv);
        assert!(fv.contains(&a));
        assert!(!fv.contains(&b));
    }

    #[test]
    fn display() {
        assert_eq!(Ty::bool_ty().to_string(), "Bool");
        assert_eq!(Ty::bot().to_string(), "⊥");
        assert_eq!(Ty::pair(Ty::Int, Ty::Top).to_string(), "(Int × ⊤)");
        assert_eq!(Ty::vec(Ty::Int).to_string(), "(Vecof Int)");
    }
}
