//! The proof system (Fig. 6) in algorithmic form.
//!
//! Environments absorb propositions through [`Checker::assume`] (eager
//! conjunction splitting, `update±` on type atoms, alias registration,
//! theory-literal storage, disjunction deferral) and answer goals through
//! [`Checker::proves`] (direct syntax-directed search, L-Bot via
//! inconsistency detection, bounded case-splitting over stored
//! disjunctions, and L-Theory via the solvers in `rtr-solver`).

use rtr_solver::lin::{Constraint, LinExpr, LinResult, SolverVar};
use rtr_solver::rational::Rat;

use crate::check::Checker;
use crate::env::Env;
use crate::intern::{PropId, TyId};
use crate::syntax::{
    BvAtomProp, BvCmp, BvObj, Field, LinAtom, LinCmp, LinObj, Obj, Path, Prop, StrAtomProp, StrObj,
    Symbol, Ty,
};

impl Checker {
    /// Binds a fresh variable at type `t`: records the (refinement-
    /// unfolded) type and exports any refinement propositions.
    pub fn bind(&self, env: &mut Env, x: Symbol, t: &Ty, fuel: u32) {
        if env.is_bound(x) {
            // Shadowing: the inner binder is a *new* variable; facts about
            // the outer one must not refine it.
            env.unbind(x);
        }
        if env.is_mutable(x) {
            // §4.2: record the initial type, learn nothing else.
            env.set_ty(x, t.clone());
            return;
        }
        if !self.config.hybrid_env {
            // The pure-proposition ablation still has Γ's `x : τ` part —
            // only atoms *learned from tests* are deferred. Unfold
            // refinements so their propositions reach the theory stores,
            // exactly as the hybrid path does.
            let mut base = t.clone();
            loop {
                match base {
                    Ty::Refine(r) => {
                        self.assume(env, &r.prop.subst(r.var, &Obj::var(x)), fuel);
                        base = r.base;
                    }
                    other => {
                        env.set_ty(x, other);
                        break;
                    }
                }
            }
            return;
        }
        self.assume_is(env, &Obj::var(x), t, fuel);
    }

    /// Extends the environment with proposition `p` (the Γ,ψ of the
    /// typing rules).
    pub fn assume(&self, env: &mut Env, p: &Prop, fuel: u32) {
        let Some(fuel) = fuel.checked_sub(1) else {
            return;
        };
        // A tripped budget stops absorbing facts: a weaker environment
        // only makes goals harder to prove (conservative), and the item
        // driver reports the trip as E0202 anyway.
        if self.budget().tripped().is_some() {
            return;
        }
        if env.is_absurd() {
            return;
        }
        match p {
            Prop::TT => {}
            Prop::FF => env.mark_absurd(),
            Prop::And(a, b) => {
                self.assume(env, a, fuel);
                self.assume(env, b, fuel);
            }
            // Disjunctions are deferred interned: `add_disj` takes ids by
            // value, so no proposition tree is cloned here.
            Prop::Or(a, b) => env.add_disj(PropId::of(a), PropId::of(b)),
            Prop::Is(o, t) => {
                let o = env.resolve(o);
                self.assume_is(env, &o, t, fuel);
            }
            Prop::IsNot(o, t) => {
                let o = env.resolve(o);
                self.assume_not(env, &o, t, fuel);
            }
            Prop::Alias(o1, o2) => {
                let o1 = env.resolve(o1);
                let o2 = env.resolve(o2);
                self.assume_alias(env, &o1, &o2, fuel);
            }
            Prop::Lin(a) => {
                if self.config.theories {
                    let a = self.resolve_lin(env, a);
                    env.add_lin_fact(a);
                }
            }
            Prop::Bv(a) => {
                if self.config.theories {
                    let a = self.resolve_bv(env, a);
                    env.add_bv_fact(a);
                }
            }
            Prop::Str(a) => {
                if self.config.theories {
                    let a = self.resolve_str(env, a);
                    env.add_str_fact(a);
                }
            }
        }
    }

    fn assume_is(&self, env: &mut Env, o: &Obj, t: &Ty, fuel: u32) {
        let Some(fuel) = fuel.checked_sub(1) else {
            return;
        };
        match o {
            Obj::Null => {}
            // L-RefI direction: o ∈ {x:τ|ψ} ⇔ o ∈ τ ∧ ψ[x↦o].
            _ if matches!(t, Ty::Refine(_)) => {
                let Ty::Refine(r) = t else { unreachable!() };
                self.assume(env, &r.prop.subst(r.var, o), fuel);
                self.assume_is(env, o, &r.base, fuel);
            }
            // L-TypeFork: ⟨o₁,o₂⟩ ∈ τ₁×τ₂ ⇒ o₁∈τ₁ ∧ o₂∈τ₂.
            Obj::Pair(a, b) => match t {
                Ty::Pair(t1, t2) => {
                    self.assume_is(env, a, t1, fuel);
                    self.assume_is(env, b, t2, fuel);
                }
                Ty::Top => {}
                Ty::Union(_) => {
                    // A pair object in a union: keep only the pair members.
                    if !self.overlap(t, &Ty::pair(Ty::Top, Ty::Top)) {
                        env.mark_absurd();
                    }
                }
                _ => {
                    if !self.overlap(t, &Ty::pair(Ty::Top, Ty::Top)) {
                        env.mark_absurd();
                    }
                }
            },
            // Integer-valued objects must remain integer-typed.
            Obj::Lin(_) => {
                if !self.overlap(t, &Ty::Int) {
                    env.mark_absurd();
                }
            }
            Obj::Bv(_) => {
                if !self.overlap(t, &Ty::BitVec) {
                    env.mark_absurd();
                }
            }
            Obj::Str(_) => {
                if !self.overlap(t, &Ty::Str) {
                    env.mark_absurd();
                }
            }
            Obj::Re(_) => {
                if !self.overlap(t, &Ty::Regex) {
                    env.mark_absurd();
                }
            }
            // L-Update⁺ on the stored positive type. Id-native: the
            // stored type is read, updated and written back as an
            // interned id; no tree is rebuilt on the memoized path.
            Obj::Path(p) => {
                let t_id = TyId::of(t);
                if !self.config.hybrid_env {
                    // §4.1 ablation (pure-proposition environment): record
                    // the atom; `ty_of_path` replays it at every query.
                    env.add_pending(p.clone(), t_id, true);
                    return;
                }
                let current = env.raw_ty_id(p.base).unwrap_or_else(TyId::top);
                let updated = self.update_ty_id(env, current, &p.fields, t_id, true, fuel);
                if self.is_empty_id(updated) {
                    env.mark_absurd();
                }
                env.set_ty_id(p.base, updated);
            }
        }
    }

    /// `assume_is` for a type already in the interner. Path objects take
    /// the `update⁺` write directly in id space (no tree re-interning);
    /// everything else — refinement unfolding, pair forking, literal
    /// objects — falls back to the tree walk.
    fn assume_is_id(&self, env: &mut Env, o: &Obj, t: TyId, fuel: u32) {
        if let (Obj::Path(p), Some(inner_fuel)) = (o, fuel.checked_sub(1)) {
            if self.config.hybrid_env && !matches!(&*t.get(), Ty::Refine(_)) {
                let current = env.raw_ty_id(p.base).unwrap_or_else(TyId::top);
                let updated = self.update_ty_id(env, current, &p.fields, t, true, inner_fuel);
                if self.is_empty_id(updated) {
                    env.mark_absurd();
                }
                env.set_ty_id(p.base, updated);
                return;
            }
        }
        self.assume_is(env, o, &t.get(), fuel);
    }

    fn assume_not(&self, env: &mut Env, o: &Obj, t: &Ty, fuel: u32) {
        let Some(fuel) = fuel.checked_sub(1) else {
            return;
        };
        match o {
            Obj::Null => {}
            // o ∉ {x:τ|ψ} ⇔ o ∉ τ ∨ ¬ψ[x↦o]  (M-RefineNot1/2).
            _ if matches!(t, Ty::Refine(_)) => {
                let Ty::Refine(r) = t else { unreachable!() };
                let inner = r.prop.subst(r.var, o);
                // Unnegatable refinements are dropped (conservative).
                if let Some(neg) = inner.negate() {
                    self.assume(
                        env,
                        &Prop::or(Prop::is_not(o.clone(), r.base.clone()), neg),
                        fuel,
                    );
                }
            }
            Obj::Pair(a, b) => {
                if let Ty::Pair(t1, t2) = t {
                    // ⟨a,b⟩ ∉ τ₁×τ₂ ⇒ a∉τ₁ ∨ b∉τ₂.
                    self.assume(
                        env,
                        &Prop::or(
                            Prop::is_not((**a).clone(), (**t1).clone()),
                            Prop::is_not((**b).clone(), (**t2).clone()),
                        ),
                        fuel,
                    );
                } else if self.subtype(env, &Ty::pair(Ty::Top, Ty::Top), t, fuel) {
                    // A pair is always in τ ⊇ ⊤×⊤; contradiction.
                    env.mark_absurd();
                }
            }
            Obj::Lin(_) => {
                if self.subtype(env, &Ty::Int, t, fuel) {
                    env.mark_absurd();
                }
            }
            Obj::Bv(_) => {
                if self.subtype(env, &Ty::BitVec, t, fuel) {
                    env.mark_absurd();
                }
            }
            Obj::Str(_) => {
                if self.subtype(env, &Ty::Str, t, fuel) {
                    env.mark_absurd();
                }
            }
            Obj::Re(_) => {
                if self.subtype(env, &Ty::Regex, t, fuel) {
                    env.mark_absurd();
                }
            }
            Obj::Path(p) => {
                let t_id = TyId::of(t);
                if !self.config.hybrid_env {
                    env.add_pending(p.clone(), t_id, false);
                    env.add_neg(p.clone(), t_id);
                    return;
                }
                let current = env.raw_ty_id(p.base).unwrap_or_else(TyId::top);
                let updated = self.update_ty_id(env, current, &p.fields, t_id, false, fuel);
                if self.is_empty_id(updated) {
                    env.mark_absurd();
                }
                env.set_ty_id(p.base, updated);
                env.add_neg(p.clone(), t_id);
            }
        }
    }

    fn assume_alias(&self, env: &mut Env, o1: &Obj, o2: &Obj, fuel: u32) {
        let Some(fuel) = fuel.checked_sub(1) else {
            return;
        };
        match (o1, o2) {
            // L-ObjFork.
            (Obj::Pair(a, b), Obj::Pair(c, d)) => {
                self.assume_alias(env, a, c, fuel);
                self.assume_alias(env, b, d, fuel);
            }
            (Obj::Path(p), other) | (other, Obj::Path(p)) if p.fields.is_empty() => {
                let x = p.base;
                if other.find_var(&mut |v| v == x).is_some() || env.is_mutable(x) {
                    self.alias_as_theory_eq(env, o1, o2);
                    return;
                }
                if self.config.representative_objects {
                    // §4.1: eagerly substitute a single representative.
                    // Copy what we already know about x onto the
                    // representative before the alias shadows it.
                    if env.raw_ty_id(x).is_some() {
                        let t_id = self.ty_of_path_id(env, &Path::var(x));
                        self.assume_is_id(env, other, t_id, fuel);
                    }
                    env.add_alias(x, other.clone());
                } else {
                    // Ablation mode: keep the alias as theory-level
                    // equalities and a type copy.
                    let t = self.ty_of_obj(env, other);
                    self.assume_is(env, &Obj::var(x), &t, fuel);
                    self.alias_as_theory_eq(env, o1, o2);
                    if let Obj::Path(q) = other {
                        // Propagate length information for vectors.
                        let lx = Obj::var(x).len();
                        let lq = Obj::Path(q.clone()).len();
                        self.assume(env, &Prop::lin(lx, LinCmp::Eq, lq), fuel);
                    }
                }
            }
            _ => self.alias_as_theory_eq(env, o1, o2),
        }
    }

    fn alias_as_theory_eq(&self, env: &mut Env, o1: &Obj, o2: &Obj) {
        if !self.config.theories {
            return;
        }
        if let (Some(l), Some(r)) = (o1.as_lin(), o2.as_lin()) {
            env.add_lin_fact(LinAtom {
                lhs: l,
                cmp: LinCmp::Eq,
                rhs: r,
            });
        }
        if let (Some(l), Some(r)) = (o1.as_bv(), o2.as_bv()) {
            env.add_bv_fact(BvAtomProp {
                lhs: l,
                cmp: BvCmp::Eq,
                rhs: r,
                positive: true,
            });
        }
        // A string path aliased to a literal is a membership in the
        // literal's exact (singleton) language, when it is expressible.
        if let (Some(l), Some(r)) = (o1.as_str_obj(), o2.as_str_obj()) {
            for (path, konst) in [(&l, &r), (&r, &l)] {
                if let (StrObj::Path(_), StrObj::Const(c)) = (path, konst) {
                    if c.is_ascii() {
                        env.add_str_fact(StrAtomProp {
                            lhs: path.clone(),
                            re: std::sync::Arc::new(rtr_solver::re::Regex::lit(c)),
                            positive: true,
                        });
                    }
                }
            }
        }
    }

    fn resolve_lin(&self, env: &Env, a: &LinAtom) -> LinAtom {
        let lhs = env.resolve(&Obj::Lin(a.lhs.clone()));
        let rhs = env.resolve(&Obj::Lin(a.rhs.clone()));
        match (lhs.as_lin(), rhs.as_lin()) {
            (Some(lhs), Some(rhs)) => LinAtom {
                lhs,
                cmp: a.cmp,
                rhs,
            },
            _ => a.clone(),
        }
    }

    fn resolve_bv(&self, env: &Env, a: &BvAtomProp) -> BvAtomProp {
        let lhs = env.resolve(&Obj::Bv(a.lhs.clone()));
        let rhs = env.resolve(&Obj::Bv(a.rhs.clone()));
        match (lhs.as_bv(), rhs.as_bv()) {
            (Some(lhs), Some(rhs)) => BvAtomProp {
                lhs,
                cmp: a.cmp,
                rhs,
                positive: a.positive,
            },
            _ => a.clone(),
        }
    }

    fn resolve_str(&self, env: &Env, a: &StrAtomProp) -> StrAtomProp {
        let lhs = match &a.lhs {
            StrObj::Const(_) => return a.clone(),
            StrObj::Path(p) => env.resolve(&Obj::Path(p.clone())),
        };
        match lhs.as_str_obj() {
            Some(lhs) => StrAtomProp {
                lhs,
                re: a.re.clone(),
                positive: a.positive,
            },
            None => a.clone(),
        }
    }

    /// `Γ ⊢ ψ` — the proof judgment, memoized on
    /// `(generation, goal, split budget)` with fuel-aware entries.
    pub fn proves(&self, env: &Env, goal: &Prop, fuel: u32) -> bool {
        self.proves_with_splits(env, goal, fuel, self.config.case_split_budget)
    }

    fn proves_with_splits(&self, env: &Env, goal: &Prop, fuel: u32, splits: u32) -> bool {
        self.proves_with_splits_from(env, goal, fuel, splits, 0)
    }

    /// `proves` with a split *frontier*: stored disjunctions below `from`
    /// have already been taken or tried on this proof path and are not
    /// revisited (branch environments remove taken clauses by
    /// `swap_remove`, so after taking index `i` the still-unconsidered
    /// clauses occupy exactly the slots from `i` on). Threading the
    /// frontier replaces the old full re-scan per ∨-elimination level —
    /// quadratic in the clause count along one proof path — with one
    /// in-order pass over the clause set.
    fn proves_with_splits_from(
        &self,
        env: &Env,
        goal: &Prop,
        fuel: u32,
        splits: u32,
        from: usize,
    ) -> bool {
        // Resource governance: one step per proof-search node; on any
        // trip the judgment answers "not provable", which only rejects
        // more programs (see `crate::budget`).
        if self
            .budget()
            .burn(crate::budget::Judgment::Proves)
            .is_some()
        {
            return false;
        }
        // The memo key does not carry the frontier, so only frontier-free
        // queries (every external entry point) consult or fill the table.
        if !self.config.memoize || from != 0 {
            return self.proves_structural(env, goal, fuel, splits, from);
        }
        if fuel == 0 {
            return false;
        }
        if env.is_absurd() || matches!(goal, Prop::TT) {
            return true;
        }
        // Theory-atom goals skip this interning-keyed table when the
        // solver caches are on: the adapters memoize them on canonical
        // fingerprints, which (unlike an interned-id key) transfer across
        // fresh-name renamings — and interning a freshly-gensymed goal
        // tree is pure miss cost. The structural search around the solver
        // call (`env_inconsistent`, case splits) stays memoized through
        // its own tables.
        if self.config.solver_cache && matches!(goal, Prop::Lin(_) | Prop::Bv(_) | Prop::Str(_)) {
            return self.proves_structural(env, goal, fuel, splits, from);
        }
        let key = (env.generation(), PropId::of(goal), splits);
        if let Some(verdict) = self.caches().proves.lookup(key, fuel) {
            return verdict;
        }
        let verdict = self.proves_structural(env, goal, fuel, splits, from);
        // A verdict computed under a tripped budget may be artificially
        // false; keep it out of the (budget-agnostic) memo tables.
        if self.may_store() {
            self.caches().proves.store(key, fuel, verdict);
        }
        verdict
    }

    fn proves_structural(
        &self,
        env: &Env,
        goal: &Prop,
        fuel: u32,
        splits: u32,
        from: usize,
    ) -> bool {
        let Some(fuel) = fuel.checked_sub(1) else {
            return false;
        };
        if env.is_absurd() {
            return true; // L-Bot
        }
        if self.prove_direct(env, goal, fuel, splits, from) {
            return true;
        }
        if self.env_inconsistent(env, fuel) {
            return true; // L-Bot via detected contradiction
        }
        // ∨-elimination over the unconsidered stored disjunctions.
        let n = env.disjs().len();
        if splits == 0 || from >= n {
            return false;
        }
        if self.config.lazy_splits && n - from > 1 {
            // Lazy scheduling, two passes: split goal-relevant clauses
            // (sharing a free variable or a solver theory with the goal)
            // first, deferring the rest. Candidates are tried against the
            // *same* environment in both passes and branch agendas depend
            // only on the clause's position — never on the pass — so the
            // verdict is exactly the eager in-order loop's; only the
            // order in which successful splits are found changes.
            let (goal_vars, goal_mask) = crate::intern::prop_relevance(goal);
            let relevant: Vec<bool> = env.disjs()[from..]
                .iter()
                .map(|&(p, q)| {
                    let (vars, mask) = self.clause_meta(p, q);
                    mask & goal_mask != 0 || goal_vars.iter().any(|x| vars.binary_search(x).is_ok())
                })
                .collect();
            #[cfg(feature = "stats")]
            crate::cache::SplitStats::bump(
                &self.caches().splits.deferred,
                relevant.iter().filter(|r| !**r).count() as u64,
            );
            for pass in 0..2 {
                for i in from..n {
                    if relevant[i - from] == (pass == 0)
                        && self.try_split(env, goal, fuel, splits, i)
                    {
                        return true;
                    }
                }
            }
        } else {
            for i in from..n {
                if self.try_split(env, goal, fuel, splits, i) {
                    return true;
                }
            }
        }
        false
    }

    /// One ∨-elimination attempt on the stored clause at slot `i`: prove
    /// the goal under each literal in turn. A literal whose assumption
    /// is immediately absurd collapses the clause to a *unit* — the goal
    /// only needs proving under the other side (which the eager search
    /// discovers too, after recursing into the absurd branch).
    fn try_split(&self, env: &Env, goal: &Prop, fuel: u32, splits: u32, i: usize) -> bool {
        let mut left = env.clone();
        let (p, q) = left.take_disj(i);
        let (p, q) = (p.get(), q.get());
        let mut right = left.clone();
        #[cfg(feature = "stats")]
        crate::cache::SplitStats::bump(&self.caches().splits.taken, 1);
        self.assume(&mut left, &p, fuel);
        if left.is_absurd() {
            #[cfg(feature = "stats")]
            crate::cache::SplitStats::bump(&self.caches().splits.units, 1);
        } else if !self.proves_with_splits_from(&left, goal, fuel, splits - 1, i) {
            return false;
        }
        self.assume(&mut right, &q, fuel);
        self.proves_with_splits_from(&right, goal, fuel, splits - 1, i)
    }

    /// Relevance metadata for a stored clause — the union of both
    /// literals' free variables and theory bits — memoized per literal
    /// pair.
    fn clause_meta(&self, p: PropId, q: PropId) -> crate::cache::ClauseMeta {
        if let Some(meta) = self.caches().clause_meta.lookup(&(p, q)) {
            return meta;
        }
        let lits = crate::intern::props_relevance([p, q]);
        let (pv, pm) = &lits[0];
        let (qv, qm) = &lits[1];
        let meta: crate::cache::ClauseMeta = if qv.is_empty() {
            (pv.clone(), pm | qm)
        } else if pv.is_empty() {
            (qv.clone(), pm | qm)
        } else {
            let mut vars: Vec<Symbol> = pv.iter().chain(qv.iter()).copied().collect();
            vars.sort_unstable();
            vars.dedup();
            (vars.into(), pm | qm)
        };
        self.caches().clause_meta.store((p, q), meta.clone());
        meta
    }

    fn prove_direct(&self, env: &Env, goal: &Prop, fuel: u32, splits: u32, from: usize) -> bool {
        match goal {
            Prop::TT => true,
            Prop::FF => false, // inconsistency is handled by the caller
            Prop::And(a, b) => {
                self.proves_with_splits_from(env, a, fuel, splits, from)
                    && self.proves_with_splits_from(env, b, fuel, splits, from)
            }
            Prop::Or(a, b) => {
                self.proves_with_splits_from(env, a, fuel, splits, from)
                    || self.proves_with_splits_from(env, b, fuel, splits, from)
            }
            Prop::Is(o, t) => {
                let o = env.resolve(o);
                self.check_is(env, &o, t, fuel)
            }
            Prop::IsNot(o, t) => {
                let o = env.resolve(o);
                self.check_not(env, &o, t, fuel)
            }
            Prop::Alias(o1, o2) => env.resolve(o1) == env.resolve(o2),
            Prop::Lin(a) => {
                self.config.theories && self.lin_entails(env, &self.resolve_lin(env, a))
            }
            Prop::Bv(a) => self.config.theories && self.bv_entails(env, &self.resolve_bv(env, a)),
            Prop::Str(a) => {
                self.config.theories && self.str_entails(env, &self.resolve_str(env, a))
            }
        }
    }

    /// `Γ ⊢ o ∈ τ` for a resolved object (L-Sub / L-RefI).
    pub(crate) fn check_is(&self, env: &Env, o: &Obj, t: &Ty, fuel: u32) -> bool {
        let Some(fuel) = fuel.checked_sub(1) else {
            return false;
        };
        if self.budget().tripped().is_some() {
            return false;
        }
        // L-RefI: o ∈ {x:τ|ψ} ⇐ o ∈ τ ∧ ψ[x↦o].
        if let Ty::Refine(r) = t {
            return self.check_is(env, o, &r.base, fuel)
                && self.proves(env, &r.prop.subst(r.var, o), fuel);
        }
        // L-Sub via S-Union2, object-aware: membership in any single
        // member suffices, and trying members keeps the object (so
        // refinement members can consult the environment's facts about
        // it). Falls through to structural subtyping when no single
        // member covers the object's whole type.
        if let Ty::Union(ss) = t {
            if ss.iter().any(|s| self.check_is(env, o, s, fuel)) {
                return true;
            }
        }
        match o {
            Obj::Null => matches!(t, Ty::Top),
            Obj::Pair(a, b) => match t {
                Ty::Top => true,
                Ty::Pair(t1, t2) => {
                    self.check_is(env, a, t1, fuel) && self.check_is(env, b, t2, fuel)
                }
                Ty::Union(ss) => ss.iter().any(|s| self.check_is(env, o, s, fuel)),
                _ => false,
            },
            Obj::Lin(_) => self.subtype(env, &Ty::Int, t, fuel),
            Obj::Bv(_) => self.subtype(env, &Ty::BitVec, t, fuel),
            Obj::Str(_) => self.subtype(env, &Ty::Str, t, fuel),
            Obj::Re(_) => self.subtype(env, &Ty::Regex, t, fuel),
            Obj::Path(p) => {
                let known = self.ty_of_path_id(env, p);
                self.subtype_id_ty(env, known, t, fuel)
            }
        }
    }

    /// `Γ ⊢ o ∉ τ` (L-Not via non-overlap, recorded negative facts, and
    /// refinement refutation).
    pub(crate) fn check_not(&self, env: &Env, o: &Obj, t: &Ty, fuel: u32) -> bool {
        let Some(fuel) = fuel.checked_sub(1) else {
            return false;
        };
        if self.budget().tripped().is_some() {
            return false;
        }
        if let Ty::Refine(r) = t {
            if self.check_not(env, o, &r.base, fuel) {
                return true;
            }
            if let Some(neg) = r.prop.subst(r.var, o).negate() {
                if self.proves(env, &neg, fuel) {
                    return true;
                }
            }
            return false;
        }
        if let Ty::Union(ss) = t {
            return ss.iter().all(|s| self.check_not(env, o, s, fuel));
        }
        let known = self.ty_of_obj_id(env, o);
        if !self.overlap(&known.get(), t) {
            return true;
        }
        if let Obj::Path(p) = o {
            if env
                .negs_of(p)
                .iter()
                .any(|nu| self.subtype_ty_id(env, t, *nu, fuel))
            {
                return true;
            }
        }
        false
    }

    /// The most specific type the environment records for an object, as
    /// a tree (AST-facing convenience over [`Checker::ty_of_obj_id`]).
    pub(crate) fn ty_of_obj(&self, env: &Env, o: &Obj) -> Ty {
        (*self.ty_of_obj_id(env, o).get()).clone()
    }

    /// The most specific type the environment records for an object —
    /// id-native: environment reads and pair assembly stay in id space.
    pub(crate) fn ty_of_obj_id(&self, env: &Env, o: &Obj) -> TyId {
        match o {
            Obj::Null => TyId::top(),
            Obj::Path(p) => self.ty_of_path_id(env, p),
            Obj::Pair(a, b) => TyId::pair(self.ty_of_obj_id(env, a), self.ty_of_obj_id(env, b)),
            Obj::Lin(_) => TyId::int(),
            Obj::Bv(_) => TyId::bitvec(),
            Obj::Str(_) => TyId::str_ty(),
            Obj::Re(_) => TyId::regex(),
        }
    }

    /// Looks up a path's type by projecting the base variable's recorded
    /// type through the fields — entirely in id space (the projections
    /// are memoized in the interner). In the pure-proposition-environment
    /// ablation the deferred atoms about the base variable are replayed
    /// through `update±` first — the per-query cost the §4.1 hybrid
    /// design pays once per assumption instead.
    pub(crate) fn ty_of_path_id(&self, env: &Env, p: &Path) -> TyId {
        let mut t = env.raw_ty_id(p.base).unwrap_or_else(TyId::top);
        if !self.config.hybrid_env {
            let fuel = self.config.logic_fuel;
            for (q, s, positive) in env.pending() {
                if q.base == p.base {
                    t = self.update_ty_id(env, t, &q.fields, *s, *positive, fuel);
                }
            }
        }
        for f in &p.fields {
            t = t.project(*f);
        }
        t
    }

    /// Is the environment contradictory (a model-free Γ)? Memoized by
    /// generation with fuel-aware entries.
    pub(crate) fn env_inconsistent(&self, env: &Env, fuel: u32) -> bool {
        if env.is_absurd() {
            return true;
        }
        // Starved answer is "consistent": the caller then checks *more*
        // conditional branches, each under the usual judgments —
        // conservative, never accepting.
        if self.budget().tripped().is_some() {
            return false;
        }
        if !self.config.memoize {
            return self.env_inconsistent_structural(env, fuel);
        }
        if fuel == 0 {
            return false;
        }
        let key = env.generation();
        if let Some(verdict) = self.caches().inconsistent.lookup(key, fuel) {
            return verdict;
        }
        let verdict = self.env_inconsistent_structural(env, fuel);
        if self.may_store() {
            self.caches().inconsistent.store(key, fuel, verdict);
        }
        verdict
    }

    fn env_inconsistent_structural(&self, env: &Env, fuel: u32) -> bool {
        let Some(fuel) = fuel.checked_sub(1) else {
            return false;
        };
        if env.is_absurd() {
            return true;
        }
        if env.types().any(|(_, t)| self.is_empty_id(t)) {
            return true;
        }
        if !self.config.hybrid_env {
            // Pure-proposition mode defers updates, so emptiness must be
            // re-derived here by replay.
            let bases: std::collections::HashSet<Symbol> =
                env.pending().iter().map(|(p, _, _)| p.base).collect();
            for b in bases {
                if self.is_empty_id(self.ty_of_path_id(env, &Path::var(b))) {
                    return true;
                }
            }
        }
        // Positive/negative conflicts: x ∈ τ with τ <: ν and x ∉ ν.
        for (p, nus) in env.negs() {
            let known = self.ty_of_path_id(env, p);
            if nus.iter().any(|nu| self.subtype_ids(env, known, *nu, fuel)) {
                return true;
            }
        }
        if self.config.theories && !self.solver_gate() {
            if self.lin_check(env) == LinResult::Unsat {
                return true;
            }
            if !env.bv_facts().is_empty() && self.bv_check(env).is_unsat() {
                return true;
            }
            if !env.str_facts().is_empty() && self.str_unsat(env) {
                return true;
            }
        }
        false
    }

    // --- theory adapters ----------------------------------------------------
    //
    // Each adapter has two paths: the incremental/memoizing one in
    // `crate::solver_cache` (fingerprint verdict transfer, trace-extended
    // Fourier–Motzkin, the persistent bitvector session) and the one-shot
    // reference below it, selected by `config.solver_cache`. The
    // equivalence tests compare the two end to end.

    /// Does the linear theory entail `goal` under the environment's facts?
    fn lin_entails(&self, env: &Env, goal: &LinAtom) -> bool {
        if self.solver_gate() {
            return false;
        }
        if self.config.solver_cache {
            return self.lin_entails_cached(env, goal);
        }
        let mut tx = LinTranslator::default();
        let mut constraints: Vec<Constraint> = Vec::new();
        for a in env.lin_facts() {
            tx.atom(a, &mut constraints);
        }
        let mut goal_cs = Vec::new();
        tx.atom(goal, &mut goal_cs);
        // One atom always lowers to exactly one constraint.
        let goal_c = goal_cs.pop().expect("atom lowers to a constraint");
        tx.add_len_nonneg(&mut constraints);
        self.fm_solver().entails(&constraints, &goal_c)
    }

    fn lin_check(&self, env: &Env) -> LinResult {
        if env.lin_facts().is_empty() {
            return LinResult::Sat;
        }
        if self.config.solver_cache {
            return self.lin_check_cached(env);
        }
        let mut tx = LinTranslator::default();
        let mut constraints = Vec::new();
        for a in env.lin_facts() {
            tx.atom(a, &mut constraints);
        }
        tx.add_len_nonneg(&mut constraints);
        self.fm_solver().check(&constraints)
    }

    /// Does the bitvector theory entail `goal`?
    fn bv_entails(&self, env: &Env, goal: &BvAtomProp) -> bool {
        if self.solver_gate() {
            return false;
        }
        if self.config.solver_cache {
            return self.bv_entails_cached(env, goal);
        }
        let mut tx = BvTranslator::new(self.config.bv_width);
        let mut facts = Vec::new();
        for a in env.bv_facts() {
            if let Some(l) = tx.lit(a) {
                facts.push(l);
            }
        }
        let Some(goal) = tx.lit(goal) else {
            return false;
        };
        let mut solver = rtr_solver::bv::BvSolver::new(self.config.sat);
        solver.set_deadline(self.budget().deadline());
        solver.entails(&facts, &goal)
    }

    fn bv_check(&self, env: &Env) -> rtr_solver::bv::BvResult {
        if self.config.solver_cache {
            return self.bv_check_cached(env);
        }
        let mut tx = BvTranslator::new(self.config.bv_width);
        let mut facts = Vec::new();
        for a in env.bv_facts() {
            if let Some(l) = tx.lit(a) {
                facts.push(l);
            }
        }
        let mut solver = rtr_solver::bv::BvSolver::new(self.config.sat);
        solver.set_deadline(self.budget().deadline());
        solver.check(&facts)
    }

    /// Does the regex theory entail `goal` under the environment's facts?
    ///
    /// Ground atoms (literal string on the left) are decided by running
    /// the matcher; open atoms are delegated to the automata-based solver.
    fn str_entails(&self, env: &Env, goal: &StrAtomProp) -> bool {
        if self.solver_gate() {
            return false;
        }
        if self.config.solver_cache {
            let fp = crate::solver_cache::str_fingerprint(env.str_facts(), Some(goal));
            if let Some(v) = self.caches().re.lookup(&fp) {
                return v;
            }
            let v = self.str_entails_session(env, goal);
            if self.may_store() {
                self.caches().re.store(fp, v);
            }
            return v;
        }
        self.str_entails_structural(env, goal)
    }

    fn str_entails_structural(&self, env: &Env, goal: &StrAtomProp) -> bool {
        let mut tx = StrTranslator::default();
        let mut facts = Vec::new();
        for a in env.str_facts() {
            match ground_str_atom(a) {
                // A false ground fact makes Γ inconsistent: entail anything.
                Some(false) => return true,
                Some(true) => {}
                None => facts.push(tx.constraint(a)),
            }
        }
        match ground_str_atom(goal) {
            Some(truth) => truth,
            None => {
                let goal = tx.constraint(goal);
                let mut solver = rtr_solver::re::ReSolver::new(self.config.re);
                solver.set_deadline(self.budget().deadline());
                solver.entails(&facts, &goal)
            }
        }
    }

    /// Is the conjunction of `env`'s regex facts unsatisfiable?
    fn str_unsat(&self, env: &Env) -> bool {
        if self.config.solver_cache {
            let fp = crate::solver_cache::str_fingerprint(env.str_facts(), None);
            if let Some(v) = self.caches().re.lookup(&fp) {
                return v;
            }
            let v = self.str_check_session(env).is_unsat();
            if self.may_store() {
                self.caches().re.store(fp, v);
            }
            return v;
        }
        self.str_check(env).is_unsat()
    }

    fn str_check(&self, env: &Env) -> rtr_solver::re::ReResult {
        let mut tx = StrTranslator::default();
        let mut facts = Vec::new();
        for a in env.str_facts() {
            match ground_str_atom(a) {
                Some(false) => return rtr_solver::re::ReResult::Unsat,
                Some(true) => {}
                None => facts.push(tx.constraint(a)),
            }
        }
        let mut solver = rtr_solver::re::ReSolver::new(self.config.re);
        solver.set_deadline(self.budget().deadline());
        solver.check(&facts)
    }
}

/// Evaluates a regex atom whose subject is a literal; `None` if open.
pub(crate) fn ground_str_atom(a: &StrAtomProp) -> Option<bool> {
    match &a.lhs {
        StrObj::Const(s) => Some(a.re.is_match(s) == a.positive),
        StrObj::Path(_) => None,
    }
}

/// Maps paths to solver variables for the regex theory.
#[derive(Default)]
struct StrTranslator {
    vars: std::collections::HashMap<Path, SolverVar>,
}

impl StrTranslator {
    fn var(&mut self, p: &Path) -> SolverVar {
        let next = SolverVar(self.vars.len() as u32);
        *self.vars.entry(p.clone()).or_insert(next)
    }

    fn constraint(&mut self, a: &StrAtomProp) -> rtr_solver::re::ReConstraint {
        let StrObj::Path(p) = &a.lhs else {
            unreachable!("ground atoms are filtered before translation")
        };
        rtr_solver::re::ReConstraint {
            var: self.var(p),
            regex: a.re.clone(),
            positive: a.positive,
        }
    }
}

/// Maps paths to solver variables for the linear theory.
#[derive(Default)]
struct LinTranslator {
    vars: std::collections::HashMap<Path, SolverVar>,
}

impl LinTranslator {
    fn var(&mut self, p: &Path) -> SolverVar {
        let next = SolverVar(self.vars.len() as u32);
        *self.vars.entry(p.clone()).or_insert(next)
    }

    fn expr(&mut self, l: &LinObj) -> LinExpr {
        let terms: Vec<(Rat, SolverVar)> = l
            .terms
            .iter()
            .map(|(c, p)| (Rat::from(*c), self.var(p)))
            .collect();
        LinExpr::from_terms(terms, Rat::from(l.constant))
    }

    fn atom(&mut self, a: &LinAtom, out: &mut Vec<Constraint>) {
        let lhs = self.expr(&a.lhs);
        let rhs = self.expr(&a.rhs);
        out.push(match a.cmp {
            LinCmp::Lt => Constraint::lt(lhs, rhs),
            LinCmp::Le => Constraint::le(lhs, rhs),
            LinCmp::Eq => Constraint::eq(lhs, rhs),
            LinCmp::Ne => Constraint::ne(lhs, rhs),
        });
    }

    /// Vector lengths are non-negative: add `0 ≤ v` for every solver var
    /// standing for a `len` path.
    fn add_len_nonneg(&mut self, out: &mut Vec<Constraint>) {
        for (p, v) in self.vars.clone() {
            if p.fields.last() == Some(&Field::Len) {
                out.push(Constraint::ge(LinExpr::var(v), LinExpr::constant(0)));
            }
        }
    }
}

/// Maps paths to solver variables for the bitvector theory.
struct BvTranslator {
    width: u32,
    vars: std::collections::HashMap<Path, SolverVar>,
}

impl BvTranslator {
    fn new(width: u32) -> BvTranslator {
        BvTranslator {
            width,
            vars: std::collections::HashMap::new(),
        }
    }

    fn var(&mut self, p: &Path) -> SolverVar {
        let next = SolverVar(self.vars.len() as u32);
        *self.vars.entry(p.clone()).or_insert(next)
    }

    fn term(&mut self, o: &BvObj) -> rtr_solver::bv::BvTerm {
        use rtr_solver::bv::BvTerm;
        let w = self.width;
        match o {
            BvObj::Const(v) => BvTerm::constant(*v, w),
            BvObj::Path(p) => BvTerm::var(self.var(p), w),
            BvObj::Not(a) => self.term(a).not(),
            BvObj::And(a, b) => self.term(a).and(self.term(b)),
            BvObj::Or(a, b) => self.term(a).or(self.term(b)),
            BvObj::Xor(a, b) => self.term(a).xor(self.term(b)),
            BvObj::Add(a, b) => self.term(a).add(self.term(b)),
            BvObj::Sub(a, b) => self.term(a).sub(self.term(b)),
            BvObj::Mul(a, b) => self.term(a).mul(self.term(b)),
        }
    }

    fn lit(&mut self, a: &BvAtomProp) -> Option<rtr_solver::bv::BvLit> {
        use rtr_solver::bv::{BvAtom, BvLit};
        let lhs = self.term(&a.lhs);
        let rhs = self.term(&a.rhs);
        let atom = match a.cmp {
            BvCmp::Eq => BvAtom::try_eq(lhs, rhs)?,
            BvCmp::Ule => BvAtom::ule(lhs, rhs),
            BvCmp::Ult => BvAtom::ult(lhs, rhs),
        };
        Some(if a.positive {
            BvLit::positive(atom)
        } else {
            BvLit::negative(atom)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> Checker {
        Checker::default()
    }
    const FUEL: u32 = 64;

    fn sym(s: &str) -> Symbol {
        Symbol::fresh(s)
    }

    #[test]
    fn occurrence_narrowing_then_branch() {
        // Γ = n ∈ (U Int Bool); assume n ∈ Int  ⊢ n ∈ Int, n ∉ Bool.
        let c = checker();
        let mut env = Env::new();
        let n = sym("n");
        c.bind(
            &mut env,
            n,
            &Ty::union_of(vec![Ty::Int, Ty::bool_ty()]),
            FUEL,
        );
        c.assume(&mut env, &Prop::is(Obj::var(n), Ty::Int), FUEL);
        assert!(c.proves(&env, &Prop::is(Obj::var(n), Ty::Int), FUEL));
        assert!(c.proves(&env, &Prop::is_not(Obj::var(n), Ty::bool_ty()), FUEL));
    }

    #[test]
    fn occurrence_narrowing_else_branch() {
        // Assume n ∉ Int: the union collapses to Bool (L-Update⁻).
        let c = checker();
        let mut env = Env::new();
        let n = sym("n");
        c.bind(
            &mut env,
            n,
            &Ty::union_of(vec![Ty::Int, Ty::bool_ty()]),
            FUEL,
        );
        c.assume(&mut env, &Prop::is_not(Obj::var(n), Ty::Int), FUEL);
        assert!(c.proves(&env, &Prop::is(Obj::var(n), Ty::bool_ty()), FUEL));
    }

    #[test]
    fn contradictory_type_facts_prove_anything() {
        // n ∈ Int then n ∉ Int ⇒ Γ ⊢ ff (L-Bot).
        let c = checker();
        let mut env = Env::new();
        let n = sym("n");
        c.bind(&mut env, n, &Ty::Int, FUEL);
        c.assume(&mut env, &Prop::is_not(Obj::var(n), Ty::Int), FUEL);
        assert!(c.proves(&env, &Prop::FF, FUEL));
        assert!(c.proves(&env, &Prop::is(Obj::var(n), Ty::True), FUEL));
    }

    #[test]
    fn pair_field_updates() {
        // p ∈ (U Int Bool)×Int; assume (fst p) ∈ Int ⊢ p ∈ Int×Int.
        let c = checker();
        let mut env = Env::new();
        let p = sym("p");
        c.bind(
            &mut env,
            p,
            &Ty::pair(Ty::union_of(vec![Ty::Int, Ty::bool_ty()]), Ty::Int),
            FUEL,
        );
        c.assume(&mut env, &Prop::is(Obj::var(p).fst(), Ty::Int), FUEL);
        assert!(c.proves(
            &env,
            &Prop::is(Obj::var(p), Ty::pair(Ty::Int, Ty::Int)),
            FUEL
        ));
    }

    #[test]
    fn linear_facts_entail_goals() {
        // 0 ≤ i, i < len v ⊢ i ≤ len v − 1 and i ≠ len v.
        let c = checker();
        let mut env = Env::new();
        let i = sym("i");
        let v = sym("v");
        c.bind(&mut env, i, &Ty::Int, FUEL);
        c.bind(&mut env, v, &Ty::vec(Ty::Int), FUEL);
        c.assume(
            &mut env,
            &Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(i)),
            FUEL,
        );
        c.assume(
            &mut env,
            &Prop::lin(Obj::var(i), LinCmp::Lt, Obj::var(v).len()),
            FUEL,
        );
        let minus1 = Obj::var(v).len().add(&Obj::int(-1));
        assert!(c.proves(&env, &Prop::lin(Obj::var(i), LinCmp::Le, minus1), FUEL));
        assert!(c.proves(
            &env,
            &Prop::lin(Obj::var(i), LinCmp::Ne, Obj::var(v).len()),
            FUEL
        ));
        // But not i ≥ 1.
        assert!(!c.proves(&env, &Prop::lin(Obj::int(1), LinCmp::Le, Obj::var(i)), FUEL));
    }

    #[test]
    fn len_is_nonnegative_by_construction() {
        // With no facts at all, len v ≥ 0 is provable.
        let c = checker();
        let mut env = Env::new();
        let v = sym("v");
        c.bind(&mut env, v, &Ty::vec(Ty::Int), FUEL);
        assert!(c.proves(
            &env,
            &Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(v).len()),
            FUEL
        ));
    }

    #[test]
    fn contradictory_lin_facts_are_absurd() {
        let c = checker();
        let mut env = Env::new();
        let i = sym("i");
        c.bind(&mut env, i, &Ty::Int, FUEL);
        c.assume(
            &mut env,
            &Prop::lin(Obj::var(i), LinCmp::Lt, Obj::int(0)),
            FUEL,
        );
        c.assume(
            &mut env,
            &Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(i)),
            FUEL,
        );
        assert!(c.proves(&env, &Prop::FF, FUEL));
    }

    #[test]
    fn refinement_assumption_unfolds() {
        // x ∈ {v:Int | 0 ≤ v} ⊢ 0 ≤ x  (L-RefE).
        let c = checker();
        let mut env = Env::new();
        let x = sym("x");
        let v = sym("v");
        let nat = Ty::refine(v, Ty::Int, Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(v)));
        c.bind(&mut env, x, &nat, FUEL);
        assert!(c.proves(&env, &Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(x)), FUEL));
        // And the refinement goal itself holds (L-RefI).
        let w = sym("w");
        let nat2 = Ty::refine(w, Ty::Int, Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(w)));
        assert!(c.proves(&env, &Prop::is(Obj::var(x), nat2), FUEL));
    }

    #[test]
    fn aliases_transport_facts() {
        // y ≡ x + 1, 0 ≤ x ⊢ 1 ≤ y (L-Transport through representatives).
        let c = checker();
        let mut env = Env::new();
        let x = sym("x");
        let y = sym("y");
        c.bind(&mut env, x, &Ty::Int, FUEL);
        c.assume(
            &mut env,
            &Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(x)),
            FUEL,
        );
        c.bind(&mut env, y, &Ty::Int, FUEL);
        c.assume(
            &mut env,
            &Prop::alias(Obj::var(y), Obj::var(x).add(&Obj::int(1))),
            FUEL,
        );
        assert!(c.proves(&env, &Prop::lin(Obj::int(1), LinCmp::Le, Obj::var(y)), FUEL));
        assert!(c.proves(
            &env,
            &Prop::alias(Obj::var(y), Obj::var(x).add(&Obj::int(1))),
            FUEL
        ));
    }

    #[test]
    fn disjunction_case_split() {
        // (x ∈ Int ∨ x ∈ Bool) with x ∈ (U Int Bool) ⊢ x ∈ (U Int Bool);
        // more interestingly: (x ≤ 3 ∨ x ≤ 5) ⊢ x ≤ 5.
        let c = checker();
        let mut env = Env::new();
        let x = sym("x");
        c.bind(&mut env, x, &Ty::Int, FUEL);
        c.assume(
            &mut env,
            &Prop::or(
                Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(3)),
                Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5)),
            ),
            FUEL,
        );
        assert!(c.proves(&env, &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5)), FUEL));
        assert!(!c.proves(&env, &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(3)), FUEL));
    }

    #[test]
    fn negative_refinement_assumption() {
        // x ∈ Int, x ∉ {v:Int | v < 10} ⊢ 10 ≤ x.
        let c = checker();
        let mut env = Env::new();
        let x = sym("x");
        let v = sym("v");
        c.bind(&mut env, x, &Ty::Int, FUEL);
        let t = Ty::refine(v, Ty::Int, Prop::lin(Obj::var(v), LinCmp::Lt, Obj::int(10)));
        c.assume(&mut env, &Prop::is_not(Obj::var(x), t), FUEL);
        assert!(c.proves(
            &env,
            &Prop::lin(Obj::int(10), LinCmp::Le, Obj::var(x)),
            FUEL
        ));
    }

    #[test]
    fn bitvector_entailment() {
        // b ≤bv 0xff ⊢ (b bvand 0x0f) ≤bv 0xff.
        let c = checker();
        let mut env = Env::new();
        let b = sym("b");
        c.bind(&mut env, b, &Ty::BitVec, FUEL);
        c.assume(
            &mut env,
            &Prop::bv(Obj::var(b), BvCmp::Ule, Obj::bv(0xff)),
            FUEL,
        );
        let masked = Obj::var(b).bv_and(&Obj::bv(0x0f));
        assert!(c.proves(&env, &Prop::bv(masked, BvCmp::Ule, Obj::bv(0xff)), FUEL));
    }

    #[test]
    fn lambda_tr_mode_ignores_theories() {
        let c = Checker::with_config(crate::config::CheckerConfig::lambda_tr());
        let mut env = Env::new();
        let i = sym("i");
        c.bind(&mut env, i, &Ty::Int, FUEL);
        c.assume(
            &mut env,
            &Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(i)),
            FUEL,
        );
        assert!(!c.proves(&env, &Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(i)), FUEL));
        // …but occurrence typing still works.
        c.assume(&mut env, &Prop::is(Obj::var(i), Ty::Int), FUEL);
        assert!(c.proves(&env, &Prop::is(Obj::var(i), Ty::Int), FUEL));
    }

    #[test]
    fn pure_proposition_env_answers_the_same_queries() {
        // The §4.1 ablation: with the hybrid environment off, narrowing
        // is replayed at query time — verdicts must not change.
        let cfg = crate::config::CheckerConfig {
            hybrid_env: false,
            ..Default::default()
        };
        let c = Checker::with_config(cfg);
        let mut env = Env::new();
        let n = sym("n");
        c.bind(
            &mut env,
            n,
            &Ty::union_of(vec![Ty::Int, Ty::bool_ty()]),
            FUEL,
        );
        c.assume(&mut env, &Prop::is(Obj::var(n), Ty::Int), FUEL);
        assert!(c.proves(&env, &Prop::is(Obj::var(n), Ty::Int), FUEL));
        assert!(c.proves(&env, &Prop::is_not(Obj::var(n), Ty::bool_ty()), FUEL));
        // Negative narrowing too.
        let mut env2 = Env::new();
        c.bind(
            &mut env2,
            n,
            &Ty::union_of(vec![Ty::Int, Ty::bool_ty()]),
            FUEL,
        );
        c.assume(&mut env2, &Prop::is_not(Obj::var(n), Ty::Int), FUEL);
        assert!(c.proves(&env2, &Prop::is(Obj::var(n), Ty::bool_ty()), FUEL));
        // And contradiction detection still works (via replay).
        c.assume(&mut env2, &Prop::is(Obj::var(n), Ty::Int), FUEL);
        assert!(c.proves(&env2, &Prop::FF, FUEL));
    }

    #[test]
    fn pure_proposition_env_handles_pair_fields() {
        let cfg = crate::config::CheckerConfig {
            hybrid_env: false,
            ..Default::default()
        };
        let c = Checker::with_config(cfg);
        let mut env = Env::new();
        let p = sym("p");
        c.bind(
            &mut env,
            p,
            &Ty::pair(Ty::union_of(vec![Ty::Int, Ty::bool_ty()]), Ty::Int),
            FUEL,
        );
        c.assume(&mut env, &Prop::is(Obj::var(p).fst(), Ty::Int), FUEL);
        assert!(c.proves(
            &env,
            &Prop::is(Obj::var(p), Ty::pair(Ty::Int, Ty::Int)),
            FUEL
        ));
    }

    #[test]
    fn regex_facts_entail_goals() {
        // s ∈ L([0-9]{4}) ⊢ s ∈ L([0-9]+) and s ∉ L([a-z]+).
        let c = checker();
        let mut env = Env::new();
        let s = sym("s");
        c.bind(&mut env, s, &Ty::Str, FUEL);
        let re = |p: &str| {
            Obj::re(std::sync::Arc::new(
                rtr_solver::re::Regex::parse(p).expect("parses"),
            ))
        };
        c.assume(
            &mut env,
            &Prop::re_match(&Obj::var(s), &re("[0-9]{4}")),
            FUEL,
        );
        assert!(c.proves(&env, &Prop::re_match(&Obj::var(s), &re("[0-9]+")), FUEL));
        let in_lower = Prop::re_match(&Obj::var(s), &re("[a-z]+"));
        assert!(c.proves(&env, &in_lower.negate().expect("negatable"), FUEL));
        // But not the too-strong goal s ∈ L([0-9]{2}).
        assert!(!c.proves(&env, &Prop::re_match(&Obj::var(s), &re("[0-9]{2}")), FUEL));
    }

    #[test]
    fn contradictory_regex_facts_are_absurd() {
        let c = checker();
        let mut env = Env::new();
        let s = sym("s");
        c.bind(&mut env, s, &Ty::Str, FUEL);
        let re = |p: &str| {
            Obj::re(std::sync::Arc::new(
                rtr_solver::re::Regex::parse(p).expect("parses"),
            ))
        };
        c.assume(&mut env, &Prop::re_match(&Obj::var(s), &re("a+")), FUEL);
        c.assume(&mut env, &Prop::re_match(&Obj::var(s), &re("b+")), FUEL);
        assert!(c.proves(&env, &Prop::FF, FUEL));
    }

    #[test]
    fn ground_regex_atoms_evaluate() {
        // "2016" ∈ L([0-9]+) is decided without touching the env.
        let c = checker();
        let env = Env::new();
        let re = |p: &str| {
            Obj::re(std::sync::Arc::new(
                rtr_solver::re::Regex::parse(p).expect("parses"),
            ))
        };
        let lit = Obj::str_const("2016");
        assert!(c.proves(&env, &Prop::re_match(&lit, &re("[0-9]+")), FUEL));
        assert!(!c.proves(&env, &Prop::re_match(&lit, &re("[a-z]+")), FUEL));
        // A false ground *fact* makes the environment absurd.
        let mut env = Env::new();
        c.assume(&mut env, &Prop::re_match(&lit, &re("[a-z]+")), FUEL);
        assert!(c.proves(&env, &Prop::FF, FUEL));
    }

    #[test]
    fn string_aliases_reach_the_regex_theory() {
        // (let (s "abc") …): s's object resolves to the literal, so
        // membership goals about s become ground.
        let c = checker();
        let mut env = Env::new();
        let s = sym("s");
        c.bind(&mut env, s, &Ty::Str, FUEL);
        c.assume(
            &mut env,
            &Prop::alias(Obj::var(s), Obj::str_const("abc")),
            FUEL,
        );
        let re = |p: &str| {
            Obj::re(std::sync::Arc::new(
                rtr_solver::re::Regex::parse(p).expect("parses"),
            ))
        };
        assert!(c.proves(&env, &Prop::re_match(&Obj::var(s), &re("[a-c]+")), FUEL));
        assert!(!c.proves(&env, &Prop::re_match(&Obj::var(s), &re("[0-9]+")), FUEL));
    }

    #[test]
    fn string_length_lives_in_the_linear_theory() {
        // (len s) ≥ 0 for a string path, with no facts at all.
        let c = checker();
        let mut env = Env::new();
        let s = sym("s");
        c.bind(&mut env, s, &Ty::Str, FUEL);
        assert!(c.proves(
            &env,
            &Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(s).len()),
            FUEL
        ));
        // And a string literal's length is a known constant.
        assert_eq!(Obj::str_const("abc").len(), Obj::int(3));
    }

    #[test]
    fn lambda_tr_mode_ignores_the_regex_theory() {
        let c = Checker::with_config(crate::config::CheckerConfig::lambda_tr());
        let mut env = Env::new();
        let s = sym("s");
        c.bind(&mut env, s, &Ty::Str, FUEL);
        let re = Obj::re(std::sync::Arc::new(
            rtr_solver::re::Regex::parse(".*").expect("parses"),
        ));
        let p = Prop::re_match(&Obj::var(s), &re);
        c.assume(&mut env, &p, FUEL);
        assert!(!c.proves(&env, &p, FUEL));
    }

    #[test]
    fn mutable_variables_learn_nothing() {
        let c = checker();
        let mut env = Env::new();
        let m = sym("cache-size");
        env.mark_mutable(m);
        c.bind(
            &mut env,
            m,
            &Ty::union_of(vec![Ty::Int, Ty::bool_ty()]),
            FUEL,
        );
        // bind recorded the declared type…
        assert_eq!(
            env.raw_ty(m).as_deref(),
            Some(&Ty::union_of(vec![Ty::Int, Ty::bool_ty()]))
        );
    }
}
