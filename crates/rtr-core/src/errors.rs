//! Type-checking errors — kept as a thin compatibility shim.
//!
//! The checker's error shape moved to the structured, located
//! [`crate::diag::Diagnostic`]: stable `E0xxx` [`crate::diag::Code`]s,
//! primary/secondary [`crate::diag::Span`]s, and a machine-readable
//! [`crate::diag::Payload`] (expected/got as interned ids, the failed
//! refinement proposition, the solver theories involved) instead of
//! pre-rendered context strings.
//!
//! `TypeError` remains as a **deprecated alias** so downstream code and
//! old signatures keep compiling; new code should name
//! [`crate::diag::Diagnostic`] directly and match on
//! [`Diagnostic::code`](crate::diag::Diagnostic::code) /
//! [`Diagnostic::payload`](crate::diag::Diagnostic::payload) rather than
//! message text.

/// Deprecated alias for [`crate::diag::Diagnostic`] — the old name of
/// the checker's error type.
pub use crate::diag::Diagnostic as TypeError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Payload};
    use crate::syntax::{Symbol, Ty};

    #[test]
    fn messages_are_informative() {
        let e = TypeError::mismatch("(safe-vec-ref B i)".into(), &Ty::Int, &Ty::bool_ty());
        let msg = e.to_string();
        assert!(msg.contains("safe-vec-ref"));
        assert!(msg.contains("expected Int"));
        assert!(msg.contains("given Bool"));
        assert_eq!(e.code, Code::TypeMismatch);
        assert!(matches!(e.payload, Payload::Mismatch { .. }));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TypeError::unbound(Symbol::intern("q")));
        assert!(e.to_string().contains("unbound"));
    }
}
