//! Type-checking errors.

use std::fmt;

use crate::syntax::{Symbol, Ty};

/// An error produced by the type checker.
///
/// Following the paper's implementation, errors carry enough context to
/// reproduce messages like the §2.1 example:
///
/// ```text
/// Type Checker error in (safe-vec-ref B i)
/// argument 2, expected: {i : Int | (0 ≤ i ∧ i < (len B))}  but given: Int
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum TypeError {
    /// A variable was referenced but never bound.
    UnboundVariable(Symbol),
    /// An expression was expected to have (a subtype of) `expected` but
    /// has `got`.
    Mismatch {
        /// Rendered source context.
        context: String,
        /// The required type.
        expected: Ty,
        /// The synthesized type.
        got: Ty,
    },
    /// A non-function was applied.
    NotAFunction {
        /// Rendered operator.
        context: String,
        /// Its synthesized type.
        got: Ty,
    },
    /// Wrong number of arguments.
    Arity {
        /// Rendered application.
        context: String,
        /// Parameters expected.
        expected: usize,
        /// Arguments given.
        got: usize,
    },
    /// `fst`/`snd` applied to a non-pair.
    NotAPair {
        /// Rendered argument.
        context: String,
        /// Its synthesized type.
        got: Ty,
    },
    /// Local type inference could not instantiate a polymorphic operator.
    CannotInfer {
        /// Rendered application.
        context: String,
        /// Human-readable reason.
        reason: String,
    },
    /// `set!` on a variable that was never bound, or whose declared type
    /// rejects the assigned value.
    BadAssignment {
        /// The assigned variable.
        var: Symbol,
        /// Reason.
        reason: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable {x}"),
            TypeError::Mismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "type checker error in {context}: expected {expected} but given {got}"
            ),
            TypeError::NotAFunction { context, got } => {
                write!(
                    f,
                    "type checker error in {context}: not a function (has type {got})"
                )
            }
            TypeError::Arity {
                context,
                expected,
                got,
            } => write!(
                f,
                "type checker error in {context}: expected {expected} argument(s), given {got}"
            ),
            TypeError::NotAPair { context, got } => {
                write!(
                    f,
                    "type checker error in {context}: not a pair (has type {got})"
                )
            }
            TypeError::CannotInfer { context, reason } => {
                write!(
                    f,
                    "type checker error in {context}: cannot infer type arguments ({reason})"
                )
            }
            TypeError::BadAssignment { var, reason } => {
                write!(f, "type checker error in (set! {var} …): {reason}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = TypeError::Mismatch {
            context: "(safe-vec-ref B i)".into(),
            expected: Ty::Int,
            got: Ty::bool_ty(),
        };
        let msg = e.to_string();
        assert!(msg.contains("safe-vec-ref"));
        assert!(msg.contains("expected Int"));
        assert!(msg.contains("given Bool"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> =
            Box::new(TypeError::UnboundVariable(Symbol::intern("q")));
        assert!(e.to_string().contains("unbound"));
    }
}
