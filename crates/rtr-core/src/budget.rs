//! Unified resource governance for the checker.
//!
//! The judgments and theory solvers were always *bounded* — recursion
//! fuel, case-split budgets, Fourier–Motzkin row limits, SAT conflict
//! caps, DFA state caps — but the bounds were scattered constants with
//! inconsistent failure behaviour. This module centralizes them behind
//! one per-check [`BudgetState`]:
//!
//! * a **step counter** ([`CheckerConfig::max_steps`]) over the four
//!   recursive judgment families (`synth`, `proves`, `subtype`,
//!   `update±`),
//! * an optional **wall-clock deadline**
//!   ([`CheckerConfig::timeout_ms`]), polled from the step counter and
//!   threaded into the long-running solver loops,
//! * a **recursion-depth guard** ([`CheckerConfig::max_depth`]) on the
//!   typing judgment, so deep programs degrade to a diagnostic instead
//!   of overflowing the big-stack thread, and
//! * (with the `chaos` Cargo feature) a deterministic, seeded
//!   **fault-injection stream** used by the robustness property suite.
//!
//! # The degradation contract
//!
//! Exhaustion is *three-valued and sound*: when a limit trips, every
//! judgment degrades **conservatively** — `proves`/`subtype` answer
//! "not provable", `update±` stops narrowing, theory solvers answer
//! "unknown". A conservative answer can only ever *reject more*
//! programs, never accept more, so a verdict obtained under exhaustion
//! is either identical to the unbounded verdict or an error. The
//! checker's drivers inspect [`BudgetState::tripped`] after each item
//! and replace conservative rejections with a structured
//! "resource limit exceeded" diagnostic
//! ([`crate::diag::Code::ResourceExhausted`], `E0202`) carrying the
//! [`LimitKind`] that tripped — never a silently-weakened verdict.
//!
//! The pre-existing per-judgment bounds (logic fuel, case splits,
//! per-theory solver budgets) are part of the *decidable judgment
//! itself* — the paper's proof search is bounded by design — so at
//! default settings they keep producing ordinary conservative verdicts,
//! bit-compatible with previous releases. The governance limits above
//! all default to "off"/unreachable and only change behaviour when a
//! client opts in (`--timeout-ms`, `--max-depth`, `max_steps`).
//!
//! [`CheckerConfig::max_steps`]: crate::config::CheckerConfig::max_steps
//! [`CheckerConfig::timeout_ms`]: crate::config::CheckerConfig::timeout_ms
//! [`CheckerConfig::max_depth`]: crate::config::CheckerConfig::max_depth

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::config::CheckerConfig;

/// Which resource limit tripped (carried by `E0202` diagnostics and the
/// JSON payload's `"limit"` field).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LimitKind {
    /// The judgment step budget (`max_steps`) ran out.
    Steps,
    /// The wall-clock deadline (`timeout_ms`) passed.
    Deadline,
    /// The typing-judgment recursion depth guard (`max_depth`) tripped.
    Depth,
    /// A fault injected by the seeded chaos harness (`chaos` feature).
    #[cfg(feature = "chaos")]
    Chaos,
    /// An external client revoked the check mid-flight through a
    /// [`CancelToken`] (an editor superseded the document version).
    Cancelled,
}

impl LimitKind {
    /// The stable lowercase tag used in the JSON schema.
    pub fn as_str(self) -> &'static str {
        match self {
            LimitKind::Steps => "steps",
            LimitKind::Deadline => "deadline",
            LimitKind::Depth => "depth",
            #[cfg(feature = "chaos")]
            LimitKind::Chaos => "injected-fault",
            LimitKind::Cancelled => "cancelled",
        }
    }

    /// A human-readable description for diagnostic messages.
    pub fn describe(self) -> &'static str {
        match self {
            LimitKind::Steps => "the judgment step budget (max_steps) was exhausted",
            LimitKind::Deadline => "the wall-clock deadline (timeout_ms) passed",
            LimitKind::Depth => "the recursion depth limit (max_depth) was reached",
            #[cfg(feature = "chaos")]
            LimitKind::Chaos => "a fault was injected by the chaos harness",
            LimitKind::Cancelled => "the check was cancelled by the client",
        }
    }

    fn from_u8(v: u8) -> Option<LimitKind> {
        match v {
            1 => Some(LimitKind::Steps),
            2 => Some(LimitKind::Deadline),
            3 => Some(LimitKind::Depth),
            #[cfg(feature = "chaos")]
            4 => Some(LimitKind::Chaos),
            5 => Some(LimitKind::Cancelled),
            _ => None,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            LimitKind::Steps => 1,
            LimitKind::Deadline => 2,
            LimitKind::Depth => 3,
            #[cfg(feature = "chaos")]
            LimitKind::Chaos => 4,
            LimitKind::Cancelled => 5,
        }
    }
}

impl std::fmt::Display for LimitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A handle for revoking an in-flight check from another thread.
///
/// Cancellation rides the same governance machinery as the wall-clock
/// deadline: the token is polled at the deadline-poll step cadence
/// (every 256 steps) and at solver-adapter boundaries, and a cancelled
/// check trips
/// [`LimitKind::Cancelled`], degrading every remaining judgment
/// conservatively — the check returns quickly with `E0202` verdicts
/// that (like all exhaustion verdicts) are never written to caches.
///
/// Tokens are one-shot: once cancelled they stay cancelled, so a fresh
/// token is minted per check (`rtr lsp` mints one per document version).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Revokes every check holding this token. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The judgment family a step is attributed to (`--stats` accounting).
#[derive(Clone, Copy, Debug)]
pub enum Judgment {
    /// The typing judgment (`synth` / `check_result`).
    Synth,
    /// The proof system (`proves` and its case-split machinery).
    Proves,
    /// Subtyping.
    Subtype,
    /// The `update±` metafunctions.
    Update,
}

/// How many steps pass between wall-clock polls when a deadline is set.
/// `Instant::now` is tens of nanoseconds; one poll per 256 judgment
/// steps keeps the overhead invisible while bounding overshoot.
const DEADLINE_POLL_MASK: u64 = 0xff;

/// Aggregate budget-consumption counters (`stats` feature), shared by a
/// check's per-item budget forks so `rtr check --stats` can report how
/// close a workload runs to its limits.
#[cfg(feature = "stats")]
#[derive(Debug)]
pub(crate) struct BudgetTotals {
    steps_synth: AtomicU64,
    steps_proves: AtomicU64,
    steps_subtype: AtomicU64,
    steps_update: AtomicU64,
    depth_high: AtomicU32,
    /// Smallest remaining wall-clock margin observed at an item
    /// boundary, in microseconds (`u64::MAX` = no deadline was set).
    min_margin_us: AtomicU64,
    trips: AtomicU64,
}

#[cfg(feature = "stats")]
impl Default for BudgetTotals {
    fn default() -> BudgetTotals {
        BudgetTotals {
            steps_synth: AtomicU64::new(0),
            steps_proves: AtomicU64::new(0),
            steps_subtype: AtomicU64::new(0),
            steps_update: AtomicU64::new(0),
            depth_high: AtomicU32::new(0),
            min_margin_us: AtomicU64::new(u64::MAX),
            trips: AtomicU64::new(0),
        }
    }
}

/// A snapshot of [`BudgetTotals`] (surfaced by `rtr check --stats`).
#[cfg(feature = "stats")]
#[derive(Clone, Copy, Debug, Default)]
pub struct BudgetStats {
    /// Steps attributed to the typing judgment.
    pub steps_synth: u64,
    /// Steps attributed to the proof system.
    pub steps_proves: u64,
    /// Steps attributed to subtyping.
    pub steps_subtype: u64,
    /// Steps attributed to `update±`.
    pub steps_update: u64,
    /// Deepest typing-judgment recursion observed.
    pub depth_high_water: u32,
    /// Smallest wall-clock margin left at an item boundary
    /// (microseconds); `None` when no deadline was configured.
    pub deadline_margin_us: Option<u64>,
    /// Governance-limit trips recorded (steps/deadline/depth/chaos).
    pub trips: u64,
}

/// The mutable resource state of one check (or one module item).
///
/// Shared by a checker and its clones through an `Arc`; a fresh state is
/// forked per checked item so one pathological item cannot starve — or
/// mis-attribute a trip to — its neighbours. All fields are atomics:
/// checking itself is single-threaded, but the checker must stay `Sync`
/// for the big-stack worker hop.
#[derive(Debug)]
pub struct BudgetState {
    max_steps: Option<u64>,
    steps: AtomicU64,
    deadline: Option<Instant>,
    max_depth: u32,
    depth: AtomicU32,
    /// First governance limit that tripped (0 = none); sticky for the
    /// rest of the item so every later judgment short-circuits
    /// conservatively.
    tripped: AtomicU8,
    /// External revocation handle, polled alongside the deadline.
    cancel: Option<CancelToken>,
    #[cfg(feature = "stats")]
    totals: Arc<BudgetTotals>,
    #[cfg(feature = "chaos")]
    chaos: Option<ChaosState>,
}

impl Default for BudgetState {
    fn default() -> BudgetState {
        BudgetState::from_config(&CheckerConfig::default(), None)
    }
}

impl BudgetState {
    /// A budget with `config`'s limits and an optional absolute
    /// deadline (already computed from `timeout_ms` by the caller, so
    /// one deadline can span a whole multi-item check).
    pub(crate) fn from_config(config: &CheckerConfig, deadline: Option<Instant>) -> BudgetState {
        BudgetState {
            max_steps: config.max_steps,
            steps: AtomicU64::new(0),
            deadline,
            max_depth: config.max_depth,
            depth: AtomicU32::new(0),
            tripped: AtomicU8::new(0),
            cancel: None,
            #[cfg(feature = "stats")]
            totals: Arc::default(),
            #[cfg(feature = "chaos")]
            chaos: config.chaos.map(|c| ChaosState::new(c, 0)),
        }
    }

    /// Forks a fresh budget for one module item: same limits and
    /// deadline, zeroed counters and trip flag, shared `--stats`
    /// totals. `salt` makes the chaos stream deterministic per item
    /// (independent of thread scheduling); callers key it by the item's
    /// *name*, keeping the stream stable across edits that insert or
    /// reorder neighbouring items.
    pub(crate) fn fork_item(&self, salt: u64) -> BudgetState {
        #[cfg(not(feature = "chaos"))]
        let _ = salt;
        let b = BudgetState {
            max_steps: self.max_steps,
            steps: AtomicU64::new(0),
            deadline: self.deadline,
            max_depth: self.max_depth,
            depth: AtomicU32::new(0),
            tripped: AtomicU8::new(0),
            cancel: self.cancel.clone(),
            #[cfg(feature = "stats")]
            totals: Arc::clone(&self.totals),
            #[cfg(feature = "chaos")]
            chaos: self.chaos.as_ref().map(|c| ChaosState::new(c.config, salt)),
        };
        // An already-revoked token trips the fork at entry, so even an
        // item too small to reach the step-poll cadence degrades rather
        // than checking a superseded document version.
        if b.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            b.trip(LimitKind::Cancelled);
        }
        b
    }

    /// Forks a fresh budget for one whole check call: zeroed counters,
    /// a deadline freshly computed from `timeout_ms`, shared `--stats`
    /// totals.
    pub(crate) fn fork_check(&self, timeout_ms: Option<u64>) -> BudgetState {
        let mut b = self.fork_item(0);
        b.deadline = timeout_ms.map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
        b
    }

    /// Like [`BudgetState::fork_check`], but additionally armed with an
    /// external [`CancelToken`] (replacing any token the parent held).
    pub(crate) fn fork_check_cancellable(
        &self,
        timeout_ms: Option<u64>,
        token: CancelToken,
    ) -> BudgetState {
        let mut b = self.fork_check(timeout_ms);
        b.cancel = Some(token);
        b
    }

    /// The deadline this budget runs against, for threading into solver
    /// sessions.
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Records a governance-limit trip. The first trip wins and is
    /// sticky; every later [`BudgetState::burn`] short-circuits.
    pub(crate) fn trip(&self, kind: LimitKind) {
        let _ =
            self.tripped
                .compare_exchange(0, kind.to_u8(), Ordering::Relaxed, Ordering::Relaxed);
        #[cfg(feature = "stats")]
        self.totals.trips.fetch_add(1, Ordering::Relaxed);
    }

    /// The first governance limit that tripped during this item, if any.
    pub fn tripped(&self) -> Option<LimitKind> {
        LimitKind::from_u8(self.tripped.load(Ordering::Relaxed))
    }

    /// Burns one judgment step. Returns the limit that is (now or
    /// already) tripped, or `None` while resources remain. Callers
    /// degrade conservatively on `Some`: boolean judgments answer
    /// "not provable", `update±` stops narrowing.
    #[inline]
    pub(crate) fn burn(&self, j: Judgment) -> Option<LimitKind> {
        if let Some(k) = self.tripped() {
            return Some(k);
        }
        let n = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        #[cfg(feature = "stats")]
        {
            let c = match j {
                Judgment::Synth => &self.totals.steps_synth,
                Judgment::Proves => &self.totals.steps_proves,
                Judgment::Subtype => &self.totals.steps_subtype,
                Judgment::Update => &self.totals.steps_update,
            };
            c.fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "stats"))]
        let _ = j;
        if let Some(max) = self.max_steps {
            if n > max {
                self.trip(LimitKind::Steps);
                return Some(LimitKind::Steps);
            }
        }
        if (self.deadline.is_some() || self.cancel.is_some())
            && n & DEADLINE_POLL_MASK == 0
            && self.poll_deadline()
        {
            return Some(self.tripped().unwrap_or(LimitKind::Deadline));
        }
        #[cfg(feature = "chaos")]
        if let Some(chaos) = &self.chaos {
            if chaos.roll(ChaosPoint::BudgetCheck) {
                self.trip(LimitKind::Chaos);
                return Some(LimitKind::Chaos);
            }
        }
        None
    }

    /// Checks the external stop conditions — the cancel token, then the
    /// wall clock against the deadline — right now (used at
    /// solver-adapter boundaries, where a single query can run long
    /// between step polls). Records and returns `true` on expiry or
    /// revocation.
    pub(crate) fn poll_deadline(&self) -> bool {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                self.trip(LimitKind::Cancelled);
                return true;
            }
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.trip(LimitKind::Deadline);
                true
            }
            _ => false,
        }
    }

    /// Enters one typing-judgment recursion level. Returns a guard that
    /// leaves the level on drop, or the tripped limit when the depth
    /// guard (or an earlier trip) fires.
    #[inline]
    pub(crate) fn descend(&self) -> Result<DepthGuard<'_>, LimitKind> {
        if let Some(k) = self.tripped() {
            return Err(k);
        }
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        if d > self.max_depth {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            self.trip(LimitKind::Depth);
            return Err(LimitKind::Depth);
        }
        #[cfg(feature = "stats")]
        self.totals.depth_high.fetch_max(d, Ordering::Relaxed);
        Ok(DepthGuard { budget: self })
    }

    /// Records the remaining wall-clock margin at an item boundary
    /// (`--stats`: "how close did this run get to its deadline").
    pub(crate) fn note_margin(&self) {
        #[cfg(feature = "stats")]
        if let Some(d) = self.deadline {
            let left = d
                .checked_duration_since(Instant::now())
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            self.totals.min_margin_us.fetch_min(left, Ordering::Relaxed);
        }
    }

    #[cfg(feature = "stats")]
    pub(crate) fn stats(&self) -> BudgetStats {
        let t = &self.totals;
        let margin = t.min_margin_us.load(Ordering::Relaxed);
        BudgetStats {
            steps_synth: t.steps_synth.load(Ordering::Relaxed),
            steps_proves: t.steps_proves.load(Ordering::Relaxed),
            steps_subtype: t.steps_subtype.load(Ordering::Relaxed),
            steps_update: t.steps_update.load(Ordering::Relaxed),
            depth_high_water: t.depth_high.load(Ordering::Relaxed),
            deadline_margin_us: (margin != u64::MAX).then_some(margin),
            trips: t.trips.load(Ordering::Relaxed),
        }
    }

    /// Rolls the chaos stream at an injection point; `true` = inject.
    #[cfg(feature = "chaos")]
    pub(crate) fn chaos_roll(&self, point: ChaosPoint) -> bool {
        self.chaos.as_ref().is_some_and(|c| c.roll(point))
    }
}

/// Leaves one typing-judgment recursion level on drop.
#[derive(Debug)]
pub(crate) struct DepthGuard<'a> {
    budget: &'a BudgetState,
}

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.budget.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The seeded fault-injection harness (`chaos` feature)
// ---------------------------------------------------------------------------

/// Configuration for the seeded fault-injection harness. Only present
/// with the `chaos` Cargo feature; `None` in
/// [`CheckerConfig::chaos`] means no injection even when compiled in.
///
/// Rates are per-mille probabilities evaluated against a deterministic
/// splitmix64 stream keyed by `(seed, item salt, injection point,
/// per-item counter)` — the schedule depends only on the seed and the
/// item, never on thread interleaving, so a chaos run is byte-identical
/// serial vs `--jobs N`.
///
/// [`CheckerConfig::chaos`]: crate::config::CheckerConfig::chaos
#[cfg(feature = "chaos")]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Per-mille chance, per budget check, of forcing a budget trip.
    pub trip_per_mille: u16,
    /// Per-mille chance, per module item, of an injected panic (tests
    /// the ICE isolation path).
    pub panic_per_mille: u16,
    /// Per-mille chance, per module item, of flushing the judgment memo
    /// tables (verdict-neutral by the memo soundness argument).
    pub flush_per_mille: u16,
    /// Per-mille chance, per theory-solver query, of forcing the
    /// conservative "unknown" answer.
    pub solver_per_mille: u16,
}

/// Where in the checker a chaos decision is being made.
#[cfg(feature = "chaos")]
#[derive(Clone, Copy, Debug)]
pub(crate) enum ChaosPoint {
    /// Inside [`BudgetState::burn`]: force a budget trip.
    BudgetCheck,
    /// At a module-item entry: inject a panic.
    ItemPanic,
    /// At a module-item entry: flush the judgment memo tables.
    CacheFlush,
    /// At a theory-solver adapter entry: force "unknown".
    SolverEntry,
}

#[cfg(feature = "chaos")]
impl ChaosPoint {
    fn tag(self) -> u64 {
        match self {
            ChaosPoint::BudgetCheck => 0x11,
            ChaosPoint::ItemPanic => 0x22,
            ChaosPoint::CacheFlush => 0x33,
            ChaosPoint::SolverEntry => 0x44,
        }
    }

    fn rate(self, c: &ChaosConfig) -> u16 {
        match self {
            ChaosPoint::BudgetCheck => c.trip_per_mille,
            ChaosPoint::ItemPanic => c.panic_per_mille,
            ChaosPoint::CacheFlush => c.flush_per_mille,
            ChaosPoint::SolverEntry => c.solver_per_mille,
        }
    }
}

/// The message injected panics carry, so the isolation tests (and the
/// chaos goldens) see a deterministic ICE payload.
#[cfg(feature = "chaos")]
pub const CHAOS_PANIC_MSG: &str = "chaos: injected panic";

#[cfg(feature = "chaos")]
#[derive(Debug)]
struct ChaosState {
    config: ChaosConfig,
    salt: u64,
    counter: AtomicU64,
}

#[cfg(feature = "chaos")]
impl ChaosState {
    fn new(config: ChaosConfig, salt: u64) -> ChaosState {
        ChaosState {
            config,
            salt,
            counter: AtomicU64::new(0),
        }
    }

    fn roll(&self, point: ChaosPoint) -> bool {
        let rate = point.rate(&self.config);
        if rate == 0 {
            return false;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let x = splitmix64(
            self.config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(self.salt)
                .wrapping_add(point.tag() << 56)
                .wrapping_add(n),
        );
        (x % 1000) < rate as u64
    }
}

#[cfg(feature = "chaos")]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burning_past_max_steps_trips_once_and_stays_tripped() {
        let cfg = CheckerConfig {
            max_steps: Some(10),
            ..CheckerConfig::default()
        };
        let b = BudgetState::from_config(&cfg, None);
        for _ in 0..10 {
            assert_eq!(b.burn(Judgment::Proves), None);
        }
        assert_eq!(b.burn(Judgment::Proves), Some(LimitKind::Steps));
        assert_eq!(b.tripped(), Some(LimitKind::Steps));
        // Sticky: later burns report the same limit.
        assert_eq!(b.burn(Judgment::Synth), Some(LimitKind::Steps));
    }

    #[test]
    fn depth_guard_trips_at_the_limit_and_releases_on_drop() {
        let cfg = CheckerConfig {
            max_depth: 2,
            ..CheckerConfig::default()
        };
        let b = BudgetState::from_config(&cfg, None);
        let g1 = b.descend().expect("level 1");
        let g2 = b.descend().expect("level 2");
        assert_eq!(b.descend().unwrap_err(), LimitKind::Depth);
        drop(g2);
        drop(g1);
        assert_eq!(b.tripped(), Some(LimitKind::Depth));
    }

    #[test]
    fn an_expired_deadline_trips_on_poll() {
        let b = BudgetState::from_config(&CheckerConfig::default(), Some(Instant::now()));
        assert!(b.poll_deadline());
        assert_eq!(b.tripped(), Some(LimitKind::Deadline));
    }

    #[test]
    fn item_forks_reset_the_trip_flag() {
        let cfg = CheckerConfig {
            max_steps: Some(0),
            ..CheckerConfig::default()
        };
        let b = BudgetState::from_config(&cfg, None);
        assert!(b.burn(Judgment::Proves).is_some());
        let fork = b.fork_item(1);
        assert_eq!(fork.tripped(), None);
        assert_eq!(fork.burn(Judgment::Proves), Some(LimitKind::Steps));
    }

    #[test]
    fn a_cancelled_token_trips_at_the_step_poll_cadence() {
        let token = CancelToken::new();
        let b = BudgetState::default().fork_check_cancellable(None, token.clone());
        for _ in 0..=DEADLINE_POLL_MASK {
            assert_eq!(b.burn(Judgment::Synth), None, "un-cancelled polls pass");
        }
        token.cancel();
        let mut tripped = None;
        for _ in 0..=DEADLINE_POLL_MASK {
            if let Some(k) = b.burn(Judgment::Proves) {
                tripped = Some(k);
                break;
            }
        }
        assert_eq!(tripped, Some(LimitKind::Cancelled));
        // Sticky, like every other governance trip.
        assert_eq!(b.burn(Judgment::Synth), Some(LimitKind::Cancelled));
    }

    #[test]
    fn a_cancelled_token_trips_immediately_at_solver_gates() {
        let token = CancelToken::new();
        let b = BudgetState::default().fork_check_cancellable(None, token.clone());
        assert!(!b.poll_deadline());
        token.cancel();
        assert!(b.poll_deadline());
        assert_eq!(b.tripped(), Some(LimitKind::Cancelled));
    }

    #[test]
    fn item_forks_inherit_the_cancel_token() {
        let token = CancelToken::new();
        let b = BudgetState::default().fork_check_cancellable(None, token.clone());
        let item = b.fork_item(1);
        token.cancel();
        assert!(item.poll_deadline());
        assert_eq!(item.tripped(), Some(LimitKind::Cancelled));
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_streams_are_deterministic_per_seed_and_salt() {
        let cfg = ChaosConfig {
            seed: 42,
            trip_per_mille: 500,
            ..ChaosConfig::default()
        };
        let roll = |salt: u64| {
            let s = ChaosState::new(cfg, salt);
            (0..64)
                .map(|_| s.roll(ChaosPoint::BudgetCheck))
                .collect::<Vec<_>>()
        };
        assert_eq!(roll(7), roll(7), "same seed+salt must replay");
        assert_ne!(roll(7), roll(8), "different salts must diverge");
    }
}
