//! Benchmark: the regex theory (automata construction + emptiness).
//!
//! The §7 extension's solver cost, measured on the query shapes the
//! checker issues: entailment between validation patterns (DFA product +
//! emptiness), DFA construction scaling in pattern size, and the
//! end-to-end checking latency of the guarded-router program from
//! `examples/input_validation.rs`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rtr_core::check::Checker;
use rtr_lang::module::check_source;
use rtr_solver::lin::SolverVar;
use rtr_solver::re::{Dfa, ReConstraint, ReSolver, Regex};

/// `s ∈ L(specific) ⊢ s ∈ L(general)` — the subtype-as-inclusion query.
fn bench_entailment_shapes(c: &mut Criterion) {
    let cases = [
        ("digits4_in_digits", "[0-9]{4}", "[0-9]+"),
        ("ident_in_word", "[A-Za-z_][A-Za-z_0-9]{0,15}", r"\w+"),
        ("ip_in_dotted", r"\d{1,3}(\.\d{1,3}){3}", r"[0-9.]+"),
    ];
    let mut group = c.benchmark_group("re_entailment");
    group.sample_size(30);
    for (name, specific, general) in cases {
        let v = SolverVar(0);
        let fact = ReConstraint::member(v, Arc::new(Regex::parse(specific).expect("parses")));
        let goal = ReConstraint::member(v, Arc::new(Regex::parse(general).expect("parses")));
        let solver = ReSolver::default();
        group.bench_function(name, |b| {
            b.iter(|| {
                assert!(solver.entails(std::slice::from_ref(&fact), &goal));
            })
        });
    }
    group.finish();
}

/// DFA construction scaling in counted-repetition size (the state count
/// grows linearly with `n`; this measures the subset-construction cost
/// the budget guards against).
fn bench_dfa_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("re_dfa_construction");
    group.sample_size(20);
    for n in [8usize, 32, 128] {
        let re = Regex::parse(&format!("[0-9]{{{n}}}")).expect("parses");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let d = Dfa::compile(&re, 1 << 13).expect("in budget");
                assert!(!d.is_empty());
            })
        });
    }
    group.finish();
}

/// End-to-end: checking the guarded-router program (regex theory on the
/// hot path) vs. its λTR-shaped unguarded sibling with plain types (no
/// theory queries at all) — the "price of the regex theory" analogue of
/// the fig9 rtr-vs-λTR comparison.
fn bench_checker_regex_programs(c: &mut Criterion) {
    let guarded = r#"
        (: serve-port : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
        (define (serve-port s) (string-length s))
        (: route : Str -> Int)
        (define (route req)
          (if (regexp-match? #rx"[0-9]+" req)
              (serve-port req)
              -1))
    "#;
    let plain = r#"
        (: serve-port : Str -> Int)
        (define (serve-port s) (string-length s))
        (: route : Str -> Int)
        (define (route req)
          (if (regexp-match? #rx"[0-9]+" req)
              (serve-port req)
              -1))
    "#;
    let mut group = c.benchmark_group("check_regex_programs");
    group.sample_size(30);
    let checker = Checker::default();
    group.bench_function("guarded_router", |b| {
        b.iter(|| check_source(guarded, &checker).expect("checks"))
    });
    group.bench_function("plain_types_baseline", |b| {
        b.iter(|| check_source(plain, &checker).expect("checks"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_entailment_shapes,
    bench_dfa_construction,
    bench_checker_regex_programs
);
criterion_main!(benches);
