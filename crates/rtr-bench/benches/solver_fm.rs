//! Benchmark: the Fourier–Motzkin theory solver.
//!
//! Scaling in the number of variables/constraints for the query shapes
//! the type checker actually issues (bounds chains), plus the
//! brute-force enumeration baseline on small boxes, and the integer-
//! tightening ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtr_solver::lin::{BruteForce, Constraint, FmConfig, FourierMotzkin, LinExpr, SolverVar};
use rtr_solver::rational::Rat;

/// A satisfiable "bounds chain": 0 ≤ x₀ ≤ x₁ ≤ … ≤ x_{n-1} ≤ 100 with
/// random offsets — the shape of accumulated index facts.
fn bounds_chain(n: u32, rng: &mut StdRng) -> Vec<Constraint> {
    let mut cs = vec![Constraint::ge(
        LinExpr::var(SolverVar(0)),
        LinExpr::constant(0),
    )];
    for k in 1..n {
        let off = rng.gen_range(0..3i64);
        cs.push(Constraint::le(
            LinExpr::var(SolverVar(k - 1)).add(&LinExpr::constant(off)),
            LinExpr::var(SolverVar(k)),
        ));
    }
    cs.push(Constraint::le(
        LinExpr::var(SolverVar(n - 1)),
        LinExpr::constant(100),
    ));
    cs
}

fn bench_fm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm_bounds_chain");
    for n in [2u32, 4, 8, 12, 16] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let cs = bounds_chain(n, &mut rng);
        let goal = Constraint::le(LinExpr::var(SolverVar(0)), LinExpr::constant(100));
        let fm = FourierMotzkin::default();
        group.bench_with_input(BenchmarkId::new("entails", n), &cs, |b, cs| {
            b.iter(|| fm.entails(cs, &goal))
        });
    }
    group.finish();
}

fn bench_fm_vs_brute(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm_vs_brute_force");
    for n in [2u32, 3, 4] {
        let mut rng = StdRng::seed_from_u64(n as u64 + 100);
        let cs = bounds_chain(n, &mut rng);
        let fm = FourierMotzkin::default();
        group.bench_with_input(BenchmarkId::new("fourier_motzkin", n), &cs, |b, cs| {
            b.iter(|| fm.check(cs))
        });
        let brute = BruteForce {
            bound: 12,
            max_assignments: 100_000_000,
        };
        group.bench_with_input(BenchmarkId::new("brute_force_baseline", n), &cs, |b, cs| {
            b.iter(|| brute.check(cs))
        });
    }
    group.finish();
}

fn bench_tightening_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm_integer_tightening");
    // A query where tightening prunes early: parity-style gaps.
    let x = || LinExpr::var(SolverVar(0));
    let two_x = x().scale(Rat::from_int(2));
    let cs = vec![
        Constraint::ge(two_x.clone(), LinExpr::constant(1)),
        Constraint::le(two_x, LinExpr::constant(1)),
        Constraint::ge(x(), LinExpr::constant(-50)),
        Constraint::le(x(), LinExpr::constant(50)),
    ];
    let on = FourierMotzkin::new(FmConfig::default());
    group.bench_function("tightening_on", |b| b.iter(|| on.check(&cs)));
    let off = FourierMotzkin::new(FmConfig {
        integer_tightening: false,
        ..FmConfig::default()
    });
    group.bench_function("tightening_off", |b| b.iter(|| off.check(&cs)));
    group.finish();
}

criterion_group!(
    benches,
    bench_fm_scaling,
    bench_fm_vs_brute,
    bench_tightening_ablation
);
criterion_main!(benches);
