//! Ablation: the §4.1 *hybrid environment*.
//!
//! "Instead of working with only a set of propositions while type
//! checking, it is helpful to use an environment with two distinct parts
//! … it is easy to iteratively refine the standard type environment with
//! the update metafunction while traversing the abstract syntax tree
//! instead of saving all logical reasoning for checking non-trivial
//! terms." This bench checks narrowing-chain programs with the hybrid
//! environment on (types refined eagerly, once per assumption) and off
//! (the formal model's pure-proposition environment: atoms recorded and
//! replayed through `update±` at every query). Both configurations
//! verify the same programs; the ablation measures the cost gap, which
//! grows with the number of live narrowed variables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rtr_bench::narrowing_chain_src;
use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_lang::check_source;

fn bench_narrowing_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_env_narrowing");
    group.sample_size(15);
    for n in [2usize, 4, 8, 12] {
        let src = narrowing_chain_src(n);
        let on = Checker::default();
        assert!(
            check_source(&src, &on).is_ok(),
            "fixture must verify (hybrid)"
        );
        group.bench_with_input(BenchmarkId::new("hybrid_on", n), &src, |b, src| {
            b.iter(|| check_source(src, &on).expect("verifies"))
        });
        let off = Checker::with_config(CheckerConfig {
            hybrid_env: false,
            ..CheckerConfig::default()
        });
        assert!(
            check_source(&src, &off).is_ok(),
            "fixture must verify (pure)"
        );
        group.bench_with_input(BenchmarkId::new("hybrid_off", n), &src, |b, src| {
            b.iter(|| check_source(src, &off).expect("verifies"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_narrowing_chains);
criterion_main!(benches);
