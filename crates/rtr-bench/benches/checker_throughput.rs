//! Benchmark: end-to-end type-checking throughput on the paper programs
//! and on module-sized inputs (lines/second, the §4.1 "real world Typed
//! Racket programs" concern).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rtr_bench::{filler_module_src, DOT_PROD_SRC, MAX_SRC, XTIME_SRC};
use rtr_core::check::Checker;
use rtr_lang::check_source;

fn bench_paper_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_paper_programs");
    let checker = Checker::default();
    for (name, src) in [
        ("fig1_max", MAX_SRC),
        ("s21_dot_prod", DOT_PROD_SRC),
        ("s22_xtime", XTIME_SRC),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| check_source(src, &checker).expect("fixture checks"))
        });
    }
    group.finish();
}

fn bench_module_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("check_module_lines");
    group.sample_size(10);
    let checker = Checker::default();
    for defs in [10usize, 50, 200] {
        let src = filler_module_src(defs);
        group.throughput(Throughput::Elements(src.lines().count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(defs), &src, |b, src| {
            b.iter(|| check_source(src, &checker).expect("module checks"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paper_programs, bench_module_throughput);
criterion_main!(benches);
