//! Benchmark: the bitvector theory (bit-blasting + CDCL SAT).
//!
//! The xtime-class obligations of §2.2 across widths, plus raw SAT
//! throughput on pigeonhole instances (the CDCL core's stress test).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rtr_solver::bv::{BvAtom, BvLit, BvSolver, BvTerm};
use rtr_solver::lin::SolverVar;
use rtr_solver::sat::{Cnf, Lit, Solver, Var};

/// num ≤ mask ⊢ ((2·num) & mask) ⊕ 0x1b ≤ mask — the xtime obligation,
/// parameterized by width.
fn xtime_query(width: u32) -> (Vec<BvLit>, BvLit) {
    let mask = (1u64 << (width.clamp(9, 16) - 1)) - 1; // byte-like bound
    let num = BvTerm::var(SolverVar(0), width);
    let k = |v: u64| BvTerm::constant(v, width);
    let fact = BvLit::positive(BvAtom::ule(num.clone(), k(mask)));
    let value = num.mul(k(2)).and(k(mask)).xor(k(0x1b));
    let goal = BvLit::positive(BvAtom::ule(value, k(mask)));
    (vec![fact], goal)
}

fn bench_xtime_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("bv_xtime_obligation");
    group.sample_size(20);
    for width in [10u32, 12, 16] {
        let (facts, goal) = xtime_query(width);
        let solver = BvSolver::default();
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| solver.entails(&facts, &goal))
        });
    }
    group.finish();
}

fn pigeonhole(n: u32) -> Cnf {
    let mut cnf = Cnf::new();
    let pigeons = n + 1;
    let var = |p: u32, h: u32| Var(p * n + h);
    for _ in 0..pigeons * n {
        cnf.fresh_var();
    }
    for p in 0..pigeons {
        cnf.add_clause((0..n).map(|h| Lit::pos(var(p, h))));
    }
    for h in 0..n {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause([Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    cnf
}

fn bench_sat_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_pigeonhole");
    group.sample_size(10);
    for n in [4u32, 5, 6] {
        let cnf = pigeonhole(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &cnf, |b, cnf| {
            b.iter(|| Solver::new().solve(cnf))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xtime_widths, bench_sat_pigeonhole);
criterion_main!(benches);
