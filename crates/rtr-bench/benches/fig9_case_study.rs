//! Benchmark: the Figure 9 case-study pipeline.
//!
//! Times the staged classification of corpus samples per library (what
//! the `fig9` binary runs in full) and the RTR-vs-λTR cost gap: the
//! baseline checker does strictly less work per access, which bounds the
//! "price of theories".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_corpus::classify::classify_library;
use rtr_corpus::gen::{generate, Library};
use rtr_corpus::profiles::libraries;

fn sample(profile_idx: usize, n: usize) -> Library {
    let profile = &libraries()[profile_idx];
    let lib = generate(profile, 2016);
    Library {
        profile: lib.profile.clone(),
        sites: lib.sites.into_iter().take(n).collect(),
        filler: Vec::new(),
    }
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_classification");
    group.sample_size(10);
    for (idx, name) in [(0usize, "plot"), (1, "pict3d"), (2, "math")] {
        let lib = sample(idx, 25);
        let rtr = Checker::default();
        group.bench_with_input(BenchmarkId::new("rtr", name), &lib, |b, lib| {
            b.iter(|| classify_library(lib, &rtr))
        });
        let tr = Checker::with_config(CheckerConfig::lambda_tr());
        group.bench_with_input(
            BenchmarkId::new("lambda_tr_baseline", name),
            &lib,
            |b, lib| b.iter(|| classify_library(lib, &tr)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
