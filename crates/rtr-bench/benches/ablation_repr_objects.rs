//! Ablation: the §4.1 *representative objects* optimization.
//!
//! "By eagerly substituting and using a single representative member in
//! the environment, large complex propositions … can be omitted entirely,
//! resulting in major performance improvements for real world Typed
//! Racket programs." This bench checks alias-chain programs of growing
//! depth with the optimization on (eager substitution) and off (aliases
//! recorded as theory-level equalities, pushing every proof through the
//! solver). Both configurations verify the same programs; the ablation
//! measures the cost gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rtr_bench::alias_chain_src;
use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_lang::check_source;

fn bench_alias_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("repr_objects_alias_chain");
    group.sample_size(20);
    for depth in [2usize, 4, 8, 16] {
        let src = alias_chain_src(depth);
        let on = Checker::default();
        assert!(check_source(&src, &on).is_ok(), "fixture must verify (on)");
        group.bench_with_input(BenchmarkId::new("repr_on", depth), &src, |b, src| {
            b.iter(|| check_source(src, &on).expect("verifies"))
        });
        let cfg = CheckerConfig {
            representative_objects: false,
            ..CheckerConfig::default()
        };
        let off = Checker::with_config(cfg);
        assert!(
            check_source(&src, &off).is_ok(),
            "fixture must verify (off)"
        );
        group.bench_with_input(BenchmarkId::new("repr_off", depth), &src, |b, src| {
            b.iter(|| check_source(src, &off).expect("verifies"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alias_chains);
criterion_main!(benches);
