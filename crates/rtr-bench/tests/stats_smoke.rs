//! Cache-effectiveness smoke test (`stats` feature only): checking the
//! §4.1 alias-chain workload must actually *hit* the subtype memo table —
//! if these assertions fail, the caches compile but never fire, and the
//! perf numbers in `BENCH_checker.json` are a lie.
//!
//! Run with: `cargo test -p rtr-bench --features stats --test stats_smoke`
#![cfg(feature = "stats")]

use rtr_bench::alias_chain_src;
use rtr_core::check::Checker;
use rtr_lang::check_source;

#[test]
fn alias_chain_hits_the_memo_tables() {
    let checker = Checker::default();
    let src = alias_chain_src(16);
    check_source(&src, &checker).expect("alias chain checks");
    let stats = checker.cache_stats();
    assert!(
        stats.subtype.0 > 0,
        "subtype memo table never hit: {stats:?}"
    );
    assert!(
        stats.inconsistent.0 + stats.inconsistent.1 > 0,
        "inconsistency memo table never consulted: {stats:?}"
    );
    assert!(checker.cache_entry_count() > 0, "memo tables are empty");

    // A second check of the same module should hit even more (environment
    // generations differ, but env-free subtype pairs are cached globally).
    let before = stats.subtype.0;
    check_source(&src, &checker).expect("alias chain re-checks");
    let after = checker.cache_stats().subtype.0;
    assert!(after > before, "re-check produced no further hits");
}

#[test]
fn theory_heavy_programs_hit_the_solver_caches() {
    // A scaled dot-prod module: every function re-poses alpha-renamed
    // copies of the same linear systems, so the canonical-fingerprint
    // verdict table must both be consulted and actually hit.
    let checker = Checker::default();
    let src = rtr_bench::dot_prod_module_src(4);
    check_source(&src, &checker).expect("dot-prod module checks");
    let stats = checker.cache_stats();
    assert!(
        stats.lin.0 + stats.lin.1 > 0,
        "linear solver cache never consulted: {stats:?}"
    );
    assert!(stats.lin.0 > 0, "linear solver cache never hit: {stats:?}");

    // Same for the bitvector table on an xtime module.
    let checker = Checker::default();
    let src = rtr_bench::xtime_module_src(2);
    check_source(&src, &checker).expect("xtime module checks");
    let stats = checker.cache_stats();
    assert!(
        stats.bv.0 + stats.bv.1 > 0,
        "bitvector solver cache never consulted: {stats:?}"
    );
    assert!(
        stats.bv.0 > 0,
        "bitvector solver cache never hit: {stats:?}"
    );
}
