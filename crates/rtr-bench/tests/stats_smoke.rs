//! Cache-effectiveness smoke test (`stats` feature only): checking the
//! §4.1 alias-chain workload must actually *hit* the subtype memo table —
//! if these assertions fail, the caches compile but never fire, and the
//! perf numbers in `BENCH_checker.json` are a lie.
//!
//! Run with: `cargo test -p rtr-bench --features stats --test stats_smoke`
#![cfg(feature = "stats")]

use rtr_bench::alias_chain_src;
use rtr_core::check::Checker;
use rtr_lang::check_source;

#[test]
fn alias_chain_hits_the_memo_tables() {
    let checker = Checker::default();
    let src = alias_chain_src(16);
    check_source(&src, &checker).expect("alias chain checks");
    let stats = checker.cache_stats();
    assert!(
        stats.subtype.0 > 0,
        "subtype memo table never hit: {stats:?}"
    );
    assert!(
        stats.inconsistent.0 + stats.inconsistent.1 > 0,
        "inconsistency memo table never consulted: {stats:?}"
    );
    assert!(
        stats.update.0 > 0,
        "id-native update± memo table never hit: {stats:?}"
    );
    assert!(checker.cache_entry_count() > 0, "memo tables are empty");

    // A second check of the same module should hit even more (environment
    // generations differ, but env-free subtype pairs are cached globally).
    let before = stats.subtype.0;
    check_source(&src, &checker).expect("alias chain re-checks");
    let after = checker.cache_stats().subtype.0;
    assert!(after > before, "re-check produced no further hits");
}

#[test]
fn env_maps_share_structure_and_fresh_names_stay_out_of_the_permanent_arena() {
    let checker = Checker::default();
    // dot-prod mints ghost existentials (fresh names) at every
    // application whose argument has no symbolic object — the workload
    // whose goals used to leak permanent arena entries per check.
    let src = rtr_bench::dot_prod_module_src(2);
    // Warm-up: let first-seen trees (annotations, Δ-table instantiations)
    // populate the permanent arena — including every source the *other*
    // tests in this binary check, since they share the global interner
    // and run concurrently.
    for warm in [
        src.clone(),
        alias_chain_src(16),
        rtr_bench::dot_prod_module_src(4),
        rtr_bench::xtime_module_src(2),
    ] {
        check_source(&warm, &checker).expect("warm-up module checks");
    }

    let env_before = rtr_core::env::env_stats();
    let arena_before = rtr_core::intern::arena_stats();
    check_source(&src, &checker).expect("dot-prod module re-checks");
    let env_after = rtr_core::env::env_stats();
    let arena_after = rtr_core::intern::arena_stats();

    // The persistent environment maps were written to and shared
    // structurally: writes happened, and far fewer trie nodes were cloned
    // than a whole-map copy-on-write would have copied.
    let writes = env_after.pmap_writes - env_before.pmap_writes;
    let cloned = env_after.pmap_nodes_cloned - env_before.pmap_nodes_cloned;
    let spared = env_after.pmap_entries_spared - env_before.pmap_entries_spared;
    assert!(writes > 0, "no persistent-map writes recorded");
    assert!(env_after.snapshots > env_before.snapshots, "no snapshots");
    assert!(
        cloned < spared,
        "structural sharing ineffective: {cloned} nodes cloned vs {spared} entries a map copy would have touched"
    );

    // Re-checking a warm module mints fresh names (ghost existentials),
    // and those must land in the fresh region, not the permanent arena.
    assert_eq!(
        arena_after.tys, arena_before.tys,
        "a warm re-check grew the permanent type arena"
    );
    assert_eq!(
        arena_after.props, arena_before.props,
        "a warm re-check grew the permanent proposition arena"
    );
    assert!(
        arena_after.fresh_props > arena_before.fresh_props
            || arena_after.fresh_tys > arena_before.fresh_tys
            || arena_after.fresh_objs > arena_before.fresh_objs,
        "fresh-name-bearing goals produced no fresh-region growth: {arena_after:?}"
    );
}

#[test]
fn lazy_split_scheduler_defers_irrelevant_clauses() {
    use rtr_core::env::Env;
    use rtr_core::syntax::{BvCmp, LinCmp, Obj, Prop, Symbol, Ty};
    const FUEL: u32 = 64;
    let checker = Checker::default();
    let mut env = Env::new();
    let i = Symbol::intern("smoke_i");
    let num = Symbol::intern("smoke_n");
    checker.bind(&mut env, i, &Ty::Int, FUEL);
    checker.bind(&mut env, num, &Ty::BitVec, FUEL);
    // A bitvector clause (no variables or theory shared with the goal —
    // the lazy scheduler must defer it) and a linear clause whose split
    // decides the goal.
    checker.assume(
        &mut env,
        &Prop::or(
            Prop::bv(Obj::var(num), BvCmp::Eq, Obj::bv(0)),
            Prop::bv(Obj::var(num), BvCmp::Eq, Obj::bv(1)),
        ),
        FUEL,
    );
    checker.assume(
        &mut env,
        &Prop::or(
            Prop::lin(Obj::var(i), LinCmp::Eq, Obj::int(0)),
            Prop::lin(Obj::var(i), LinCmp::Eq, Obj::int(1)),
        ),
        FUEL,
    );
    // 0 ≤ i ∧ i ≤ 1: not entailed directly, provable in both branches of
    // the linear clause.
    let goal = Prop::and(
        Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(i)),
        Prop::lin(Obj::var(i), LinCmp::Le, Obj::int(1)),
    );
    assert!(
        checker.proves(&env, &goal, FUEL),
        "case split must decide the goal"
    );
    let stats = checker.cache_stats();
    let (_, taken, deferred) = stats.splits;
    assert!(taken > 0, "no case splits taken: {stats:?}");
    assert!(
        deferred > 0,
        "goal-irrelevant clause was never deferred: {stats:?}"
    );
    assert!(
        stats.clause_meta.0 + stats.clause_meta.1 > 0,
        "clause-relevance metadata never consulted: {stats:?}"
    );
}

#[test]
fn string_module_hits_the_regex_session() {
    let checker = Checker::default();
    let src = rtr_bench::string_module_src(8);
    check_source(&src, &checker).expect("string module checks");
    let stats = checker.cache_stats();
    assert!(
        stats.re.0 + stats.re.1 > 0,
        "regex verdict table never consulted: {stats:?}"
    );
    let re = stats.re_session;
    assert!(
        re.dfa_misses > 0,
        "regex session never compiled a DFA: {stats:?}"
    );
    assert!(
        re.dfa_hits > 0,
        "regex session DFA cache never hit: {stats:?}"
    );
}

#[test]
fn theory_heavy_programs_hit_the_solver_caches() {
    // A scaled dot-prod module: every function re-poses alpha-renamed
    // copies of the same linear systems, so the canonical-fingerprint
    // verdict table must both be consulted and actually hit.
    let checker = Checker::default();
    let src = rtr_bench::dot_prod_module_src(4);
    check_source(&src, &checker).expect("dot-prod module checks");
    let stats = checker.cache_stats();
    assert!(
        stats.lin.0 + stats.lin.1 > 0,
        "linear solver cache never consulted: {stats:?}"
    );
    assert!(stats.lin.0 > 0, "linear solver cache never hit: {stats:?}");

    // Same for the bitvector table on an xtime module.
    let checker = Checker::default();
    let src = rtr_bench::xtime_module_src(2);
    check_source(&src, &checker).expect("xtime module checks");
    let stats = checker.cache_stats();
    assert!(
        stats.bv.0 + stats.bv.1 > 0,
        "bitvector solver cache never consulted: {stats:?}"
    );
    assert!(
        stats.bv.0 > 0,
        "bitvector solver cache never hit: {stats:?}"
    );
}
