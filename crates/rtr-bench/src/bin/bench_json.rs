//! `bench_json` — machine-readable checker benchmarks.
//!
//! Runs the cheap end-to-end checking workloads (the paper programs plus
//! the synthetic alias/narrowing chains) and writes per-bench mean/min
//! nanoseconds to a JSON report, so the perf trajectory of the checker is
//! recorded in-repo instead of scrolling away in criterion's stdout.
//!
//! ```sh
//! cargo run --release -p rtr-bench --bin bench_json -- \
//!     [--out BENCH_checker.json] [--samples N] [--quick]
//! ```
//!
//! `--quick` caps calibration so a CI smoke run finishes in seconds.
//!
//! Each iteration uses a **fresh `Checker`** so its per-checker memo
//! tables start cold — the reported times are one-shot module checks,
//! not warm steady state. (The global `Ty`/`Prop`/`Obj` interner is
//! process-wide and stays warm, as it would in any long-lived tool.)
//!
//! The `warm_edit/*` workloads are the deliberate exception: they model
//! an editor session, alternating a one-definition body edit against a
//! **warm** incremental cache (one long-lived checker, one
//! `ModuleCache`), so each iteration is a one-item re-check plus cache
//! splicing rather than a from-scratch pass. Compare them against the
//! same-module cold workloads (`module/filler_50`, `module/string_8`)
//! for the incremental speedup.

use std::time::{Duration, Instant};

use rtr_bench::{
    alias_chain_src, bv_chain_src, dot_prod_module_src, filler_module_src, many_errors_module_src,
    narrowing_chain_src, string_module_src, xtime_module_src, DOT_PROD_SRC, MAX_SRC, XTIME_SRC,
};
use rtr_core::check::Checker;
use rtr_lang::{check_module_source, check_module_source_incremental, check_source, ModuleCache};

struct Opts {
    out: String,
    samples: usize,
    quick: bool,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        out: "BENCH_checker.json".to_owned(),
        samples: 10,
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--samples" => {
                opts.samples = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--samples needs a number")
            }
            "--quick" => opts.quick = true,
            other => {
                eprintln!("bench_json: unknown argument {other}");
                eprintln!("usage: bench_json [--out PATH] [--samples N] [--quick]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// A named, boxed workload closure (borrowing the checker and sources).
type Workload<'a> = (&'static str, Box<dyn FnMut() + 'a>);

struct Record {
    name: &'static str,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters: u64,
}

/// Times `f` like the criterion shim: calibrate an iteration count toward
/// `target` per sample, then take `samples` timed samples.
fn measure(name: &'static str, samples: usize, quick: bool, mut f: impl FnMut()) -> Record {
    let target = if quick {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(20)
    };
    // Untimed warm-up: absorbs one-time effects (lazy allocations, cache
    // population, a pending interner eviction left by earlier workloads)
    // so both calibration and the timed samples observe steady state.
    for _ in 0..3 {
        f();
    }
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= 1 << 16 {
            break;
        }
        let per_iter = elapsed.as_nanos().max(1) / iters as u128;
        let goal = (target.as_nanos() / per_iter).clamp(iters as u128 + 1, iters as u128 * 16);
        iters = goal as u64;
    }
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min_ns = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    eprintln!(
        "{name:<32} mean {:>12.0} ns  min {:>12.0} ns",
        mean_ns, min_ns
    );
    Record {
        name,
        mean_ns,
        min_ns,
        samples,
        iters,
    }
}

fn main() {
    let opts = parse_args();
    let alias16 = alias_chain_src(16);
    let alias64 = alias_chain_src(64);
    let alias256 = alias_chain_src(256);
    let alias512 = alias_chain_src(512);
    let string8 = string_module_src(8);
    let narrow8 = narrowing_chain_src(8);
    let narrow32 = narrowing_chain_src(32);
    let filler50 = filler_module_src(50);
    let many_errors50 = many_errors_module_src(50);
    let dot_prod8 = dot_prod_module_src(8);
    let xtime4 = xtime_module_src(4);
    let bv_chain6 = bv_chain_src(6);

    // Warm-edit pairs: the same module with one definition's body
    // constant flipped (signatures untouched, so dependents splice via
    // the early cutoff).
    let filler50_a = filler_module_src(50);
    let filler50_b = filler50_a.replace(
        "(define (u25 x y) (+ (* 2 x) (- y 4)))",
        "(define (u25 x y) (+ (* 3 x) (- y 4)))",
    );
    assert_ne!(filler50_a, filler50_b, "the warm filler edit must land");
    let string8_a = string_module_src(8);
    let string8_b = string8_a.replace(
        "(define (digits3 s) (string-length s))",
        "(define (digits3 s) (+ (string-length s) 0))",
    );
    assert_ne!(string8_a, string8_b, "the warm string edit must land");
    let warm_checker = Checker::default();
    let (mut filler_cache, mut string_cache): (Option<ModuleCache>, Option<ModuleCache>) =
        (None, None);
    let (mut filler_flip, mut string_flip) = (false, false);
    // The LSP didChange round trip (PR 10): everything `rtr lsp` does
    // per keystroke except the pipe itself — frame + parse the
    // notification, incremental overlay check through the session, and
    // render the publishDiagnostics payload.
    let lsp_session = rtr::session::Session::new(rtr::session::SessionConfig {
        jobs: 1,
        incremental: true,
        ..rtr::session::SessionConfig::default()
    });
    const LSP_URI: &str = "file:///bench/filler_50.rtr";
    let (mut lsp_flip, mut lsp_warm) = (false, false);
    let mut lsp_epoch = rtr_core::intern::evict_epoch();

    let workloads: Vec<Workload> = vec![
        (
            "paper/fig1_max",
            Box::new(|| {
                check_source(MAX_SRC, &Checker::default()).expect("max checks");
            }),
        ),
        (
            "paper/dot_prod",
            Box::new(|| {
                check_source(DOT_PROD_SRC, &Checker::default()).expect("dot-prod checks");
            }),
        ),
        (
            "paper/xtime",
            Box::new(|| {
                check_source(XTIME_SRC, &Checker::default()).expect("xtime checks");
            }),
        ),
        (
            "alias_chain/16",
            Box::new(|| {
                check_source(&alias16, &Checker::default()).expect("alias chain checks");
            }),
        ),
        (
            "alias_chain/64",
            Box::new(|| {
                check_source(&alias64, &Checker::default()).expect("alias chain checks");
            }),
        ),
        // Deep-environment workloads (PR 4): a 256-binder alias chain and
        // an update-heavy 32-way narrowing chain — the shapes whose
        // per-binder map copies and `update±` tree rebuilds the id-native
        // persistent environment is built to collapse.
        (
            "alias_chain/256",
            Box::new(|| {
                check_source(&alias256, &Checker::default()).expect("alias chain checks");
            }),
        ),
        // PR 7: double the alias-chain depth again — the per-binder cost
        // the zero-information let fast path removes grows linearly here,
        // so regressions show up amplified.
        (
            "alias_chain/512",
            Box::new(|| {
                check_source(&alias512, &Checker::default()).expect("alias chain checks");
            }),
        ),
        (
            "narrowing_chain/8",
            Box::new(|| {
                check_source(&narrow8, &Checker::default()).expect("narrowing chain checks");
            }),
        ),
        (
            "narrowing_chain/32",
            Box::new(|| {
                check_source(&narrow32, &Checker::default()).expect("narrowing chain checks");
            }),
        ),
        (
            "module/filler_50",
            Box::new(|| {
                check_source(&filler50, &Checker::default()).expect("filler module checks");
            }),
        ),
        // Multi-error recovery (PR 5): every third definition fails, and
        // the recovering module checker reports all of them — this keeps
        // the diagnostics path honest without regressing the well-typed
        // hot loop (the workloads above).
        (
            "module/many_errors_50",
            Box::new(|| {
                let report = check_module_source(&many_errors50, &Checker::default());
                assert_eq!(report.error_count(), 17, "recovery must find every error");
            }),
        ),
        // Solver-heavy workloads (PR 3): scaled theory modules and a
        // growing-fact-set narrowing chain.
        (
            "module/dot_prod_8",
            Box::new(|| {
                check_source(&dot_prod8, &Checker::default()).expect("dot-prod module checks");
            }),
        ),
        (
            "module/xtime_4",
            Box::new(|| {
                check_source(&xtime4, &Checker::default()).expect("xtime module checks");
            }),
        ),
        (
            "bv_chain/6",
            Box::new(|| {
                check_source(&bv_chain6, &Checker::default()).expect("bv chain checks");
            }),
        ),
        // String-theory module (PR 7): overlapping regex entailments that
        // the persistent regex session answers from warm DFA caches.
        (
            "module/string_8",
            Box::new(|| {
                check_source(&string8, &Checker::default()).expect("string module checks");
            }),
        ),
        // Incremental warm edits (PR 9): each iteration flips one body
        // constant and re-checks against the previous iteration's
        // cache — the editor-loop latency the incremental driver is
        // built for. Compare against the cold module workloads above.
        (
            "warm_edit/filler_50",
            Box::new(|| {
                filler_flip = !filler_flip;
                let src = if filler_flip {
                    &filler50_b
                } else {
                    &filler50_a
                };
                let was_warm = filler_cache.is_some();
                let (report, cache, stats) =
                    check_module_source_incremental(src, &warm_checker, filler_cache.as_ref());
                assert!(report.is_clean(), "warm filler checks");
                if was_warm {
                    let s = stats.expect("the incremental path must engage");
                    assert_eq!(s.rechecked, 1, "exactly the edited definition re-checks");
                }
                filler_cache = cache;
            }),
        ),
        (
            "lsp_edit/filler_50",
            Box::new(|| {
                lsp_flip = !lsp_flip;
                let src = if lsp_flip { &filler50_b } else { &filler50_a };
                let body = format!(
                    "{{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didChange\",\"params\":{{\"textDocument\":{{\"uri\":\"{LSP_URI}\",\"version\":1}},\"contentChanges\":[{{\"text\":\"{}\"}}]}}}}",
                    rtr::json::escape(src)
                );
                let mut wire = Vec::new();
                rtr::lsp::framing::write_message(&mut wire, &body).expect("frame");
                let framed = rtr::lsp::framing::read_message(&mut &wire[..])
                    .expect("read frame")
                    .expect("one frame");
                let msg = rtr::lsp::protocol::parse_message(&framed).expect("parse");
                let text =
                    rtr::lsp::protocol::last_content_change(&msg.params).expect("full sync text");
                let file = rtr::session::SourceFile::new("/bench/filler_50.rtr", text);
                let token = rtr_core::budget::CancelToken::new();
                // The session retires the fresh interner arena every so
                // many checks, which invalidates item caches by design
                // (the retirement runs after the previous iteration
                // stored its cache). Only iterations whose cache
                // survived that epoch must splice.
                let epoch = rtr_core::intern::evict_epoch();
                let report = lsp_session.check_cancellable(&file, &token);
                if lsp_warm && epoch == lsp_epoch {
                    assert_eq!(
                        report.stats.rechecked_items,
                        Some(1),
                        "exactly the edited definition re-checks through the overlay"
                    );
                }
                (lsp_warm, lsp_epoch) = (true, epoch);
                let ix = rtr_core::diag::LineIndex::new(text);
                let publish = rtr::lsp::protocol::publish_diagnostics_params(
                    LSP_URI,
                    1,
                    &ix,
                    text,
                    &report.diagnostics,
                );
                assert!(
                    publish.contains("\"diagnostics\":[]"),
                    "warm filler is clean"
                );
            }),
        ),
        (
            "warm_edit/string_8",
            Box::new(|| {
                string_flip = !string_flip;
                let src = if string_flip { &string8_b } else { &string8_a };
                let was_warm = string_cache.is_some();
                let (report, cache, stats) =
                    check_module_source_incremental(src, &warm_checker, string_cache.as_ref());
                assert!(report.is_clean(), "warm string module checks");
                if was_warm {
                    let s = stats.expect("the incremental path must engage");
                    assert_eq!(s.rechecked, 1, "exactly the edited definition re-checks");
                }
                string_cache = cache;
            }),
        ),
    ];

    let mut records = Vec::new();
    for (name, mut f) in workloads {
        records.push(measure(name, opts.samples.max(1), opts.quick, &mut *f));
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"rtr-bench-checker-v1\",\n  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            r.name,
            r.mean_ns,
            r.min_ns,
            r.samples,
            r.iters,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&opts.out, &json).expect("writing the report");
    eprintln!("wrote {}", opts.out);
}
