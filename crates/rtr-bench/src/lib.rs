//! Shared fixtures for the benchmark suite: the paper programs and
//! synthetic workload builders every bench target uses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Fig. 1's `max` with its refined range.
pub const MAX_SRC: &str = r#"
    (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
    (define (max x y) (if (> x y) x y))
"#;

/// §2.1's `dot-prod` with the dynamic length guard (verifies the loop).
pub const DOT_PROD_SRC: &str = r#"
    (: dot-prod : [A : (Vecof Int)] [B : (Vecof Int)] -> Int)
    (define (dot-prod A B)
      (begin
        (unless (= (len A) (len B))
          (error "invalid vector lengths!"))
        (for/sum ([i (in-range (len A))])
          (* (safe-vec-ref A i) (safe-vec-ref B i)))))
"#;

/// §2.2's `xtime` (bitvector theory).
pub const XTIME_SRC: &str = r#"
    (: xtime : [num : Byte] -> Byte)
    (define (xtime num)
      (let ([n (AND (bv* #x02 num) #xff)])
        (cond
          [(bv= #x00 (AND num #x80)) n]
          [else (XOR n #x1b)])))
"#;

/// A guarded access behind a chain of `n` let-aliases — the workload the
/// §4.1 representative-objects optimization targets.
pub fn alias_chain_src(n: usize) -> String {
    assert!(n >= 1);
    let mut binds = String::new();
    binds.push_str("  (let ([a0 (len v)])\n");
    for k in 1..n {
        binds.push_str(&format!("  (let ([a{k} a{}])\n", k - 1));
    }
    let last = n - 1;
    let closes = ")".repeat(n);
    format!(
        "(define (chain [v : (Vecof Int)] [i : Int])\n\
         {binds}\
         \x20 (if (and (<= 0 i) (< i a{last}))\n\
         \x20     (safe-vec-ref v i)\n\
         \x20     0){closes})\n"
    )
}

/// A function with `n` union-typed parameters, each narrowed by a test
/// before all are used — the workload that separates the §4.1 hybrid
/// environment (each test refines the stored type once) from the formal
/// model's pure-proposition environment (each *use* replays every
/// recorded atom).
pub fn narrowing_chain_src(n: usize) -> String {
    assert!(n >= 1);
    let params: String = (0..n).map(|k| format!("[x{k} : (U Int Bool)] ")).collect();
    let mut body = {
        let mut sum = "0".to_string();
        for k in (0..n).rev() {
            sum = format!("(+ x{k} {sum})");
        }
        sum
    };
    for k in (0..n).rev() {
        body = format!("(if (int? x{k}) {body} 0)");
    }
    format!(
        "(: narrow : {params}-> Int)
(define (narrow {}) {body})
",
        (0..n)
            .map(|k| format!("x{k}"))
            .collect::<Vec<_>>()
            .join(" ")
    )
}

/// A module of `n` `dot-prod`-shaped functions — the solver-heavy §2.1
/// workload at module scale. Every function poses the same linear
/// constraint systems modulo variable renaming, which is exactly what the
/// canonicalized solver-verdict fingerprints are built to exploit.
pub fn dot_prod_module_src(n: usize) -> String {
    let mut out = String::new();
    for k in 0..n {
        out.push_str(&format!(
            "(: dp{k} : [A : (Vecof Int)] [B : (Vecof Int)] -> Int)\n\
             (define (dp{k} A B)\n\
             \x20 (begin\n\
             \x20   (unless (= (len A) (len B))\n\
             \x20     (error \"invalid vector lengths!\"))\n\
             \x20   (for/sum ([i (in-range (len A))])\n\
             \x20     (* (safe-vec-ref A i) (safe-vec-ref B i)))))\n"
        ));
    }
    out
}

/// A module of `n` `xtime`-shaped functions — the bitvector-theory §2.2
/// workload at module scale (each function re-poses the same bit-blast
/// queries, exercising the persistent session's term/clause reuse).
pub fn xtime_module_src(n: usize) -> String {
    let mut out = String::new();
    for k in 0..n {
        out.push_str(&format!(
            "(: xt{k} : [num : Byte] -> Byte)\n\
             (define (xt{k} num)\n\
             \x20 (let ([n (AND (bv* #x02 num) #xff)])\n\
             \x20   (cond\n\
             \x20     [(bv= #x00 (AND num #x80)) n]\n\
             \x20     [else (XOR n #x1b)])))\n"
        ));
    }
    out
}

/// A function narrowing one bitvector through a chain of `n` mask tests,
/// each `let`-bound so the program grows linearly — every test adds a
/// bitvector fact, so consistency is re-decided over a growing fact set
/// (the workload for incremental fact-set solving).
pub fn bv_chain_src(n: usize) -> String {
    assert!(n >= 1);
    let mut binds = String::from("  (let ([b0 (AND num #xff)])\n");
    for k in 1..=n {
        let mask = 1u64 << (k % 8);
        binds.push_str(&format!(
            "  (let ([b{k} (if (bv= #x00 (AND num #x{mask:02x})) b{} (AND (XOR b{} #x01) #xff))])\n",
            k - 1,
            k - 1
        ));
    }
    let closes = ")".repeat(n + 1);
    format!(
        "(: bvchain : [num : Byte] -> Byte)\n\
         (define (bvchain num)\n\
         {binds}\
         \x20 (AND b{n} #xff){closes})\n"
    )
}

/// A module of `n` regex-guarded string validators — the string-theory
/// (§7 regex extension) workload at module scale. Every function nests
/// two membership tests and calls a refinement-typed helper, so the
/// checker keeps re-posing entailments over overlapping regex sets: the
/// `[0-9]+` base literal recurs in every function (a persistent regex
/// session compiles its DFA once), while the counted inner test cycles
/// through four variants so queries don't all collapse into a single
/// memoized fingerprint.
pub fn string_module_src(n: usize) -> String {
    let mut out = String::new();
    for k in 0..n {
        let m = k % 4 + 1;
        out.push_str(&format!(
            "(: digits{k} : [s : Str #:where (=~ s #rx\"[0-9]+\")] -> Int)\n\
             (define (digits{k} s) (string-length s))\n\
             (: parse{k} : Str -> Int)\n\
             (define (parse{k} s)\n\
             \x20 (if (regexp-match? #rx\"[0-9]+\" s)\n\
             \x20     (if (regexp-match? #rx\"[0-9]{{{m},}}\" s)\n\
             \x20         (digits{k} s)\n\
             \x20         (digits{k} s))\n\
             \x20     0))\n"
        ));
    }
    out
}

/// A module of `n` simple well-typed definitions (checker throughput).
pub fn filler_module_src(n: usize) -> String {
    let mut out = String::new();
    for k in 0..n {
        out.push_str(&format!(
            "(: u{k} : [x : Int] [y : Int] -> Int)\n\
             (define (u{k} x y) (+ (* 2 x) (- y {})))\n",
            k % 7
        ));
    }
    out
}

/// A module of `n` definitions where every third one is ill-typed — the
/// multi-error *recovery* workload. The recovering module checker must
/// report every failing definition (poisoning each and moving on), so
/// this measures the diagnostics path without giving up the well-typed
/// majority of the module.
pub fn many_errors_module_src(n: usize) -> String {
    let mut out = String::new();
    for k in 0..n {
        if k % 3 == 0 {
            // Range mismatch: Bool body against an Int range.
            out.push_str(&format!(
                "(: e{k} : [x : Int] -> Int)\n\
                 (define (e{k} x) (int? x))\n"
            ));
        } else {
            out.push_str(&format!(
                "(: w{k} : [x : Int] [y : Int] -> Int)\n\
                 (define (w{k} x y) (+ (* 2 x) (- y {})))\n",
                k % 7
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::check::Checker;
    use rtr_lang::check_source;

    #[test]
    fn fixtures_type_check() {
        let c = Checker::default();
        assert!(check_source(MAX_SRC, &c).is_ok());
        assert!(check_source(DOT_PROD_SRC, &c).is_ok());
        assert!(check_source(XTIME_SRC, &c).is_ok());
        assert!(check_source(&alias_chain_src(8), &c).is_ok());
        assert!(check_source(&narrowing_chain_src(6), &c).is_ok());
        let pure = Checker::with_config(rtr_core::config::CheckerConfig {
            hybrid_env: false,
            ..Default::default()
        });
        assert!(check_source(&narrowing_chain_src(6), &pure).is_ok());
        assert!(check_source(&filler_module_src(5), &c).is_ok());
        assert!(check_source(&dot_prod_module_src(2), &c).is_ok());
        assert!(check_source(&xtime_module_src(2), &c).is_ok());
        assert!(check_source(&bv_chain_src(4), &c).is_ok());
        assert!(check_source(&string_module_src(5), &c).is_ok());
        let one_shot = Checker::with_config(rtr_core::config::CheckerConfig {
            solver_cache: false,
            ..Default::default()
        });
        assert!(check_source(&string_module_src(5), &one_shot).is_ok());
    }

    #[test]
    fn many_errors_module_reports_one_diagnostic_per_bad_define() {
        let c = Checker::default();
        let report = rtr_lang::check_module_source(&many_errors_module_src(9), &c);
        assert_eq!(report.error_count(), 3);
        assert!(report.diagnostics.iter().all(|d| d.primary.is_some()));
    }
}
