//! Shared fixtures for the benchmark suite: the paper programs and
//! synthetic workload builders every bench target uses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Fig. 1's `max` with its refined range.
pub const MAX_SRC: &str = r#"
    (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
    (define (max x y) (if (> x y) x y))
"#;

/// §2.1's `dot-prod` with the dynamic length guard (verifies the loop).
pub const DOT_PROD_SRC: &str = r#"
    (: dot-prod : [A : (Vecof Int)] [B : (Vecof Int)] -> Int)
    (define (dot-prod A B)
      (begin
        (unless (= (len A) (len B))
          (error "invalid vector lengths!"))
        (for/sum ([i (in-range (len A))])
          (* (safe-vec-ref A i) (safe-vec-ref B i)))))
"#;

/// §2.2's `xtime` (bitvector theory).
pub const XTIME_SRC: &str = r#"
    (: xtime : [num : Byte] -> Byte)
    (define (xtime num)
      (let ([n (AND (bv* #x02 num) #xff)])
        (cond
          [(bv= #x00 (AND num #x80)) n]
          [else (XOR n #x1b)])))
"#;

/// A guarded access behind a chain of `n` let-aliases — the workload the
/// §4.1 representative-objects optimization targets.
pub fn alias_chain_src(n: usize) -> String {
    assert!(n >= 1);
    let mut binds = String::new();
    binds.push_str("  (let ([a0 (len v)])\n");
    for k in 1..n {
        binds.push_str(&format!("  (let ([a{k} a{}])\n", k - 1));
    }
    let last = n - 1;
    let closes = ")".repeat(n);
    format!(
        "(define (chain [v : (Vecof Int)] [i : Int])\n\
         {binds}\
         \x20 (if (and (<= 0 i) (< i a{last}))\n\
         \x20     (safe-vec-ref v i)\n\
         \x20     0){closes})\n"
    )
}

/// A function with `n` union-typed parameters, each narrowed by a test
/// before all are used — the workload that separates the §4.1 hybrid
/// environment (each test refines the stored type once) from the formal
/// model's pure-proposition environment (each *use* replays every
/// recorded atom).
pub fn narrowing_chain_src(n: usize) -> String {
    assert!(n >= 1);
    let params: String = (0..n).map(|k| format!("[x{k} : (U Int Bool)] ")).collect();
    let mut body = {
        let mut sum = "0".to_string();
        for k in (0..n).rev() {
            sum = format!("(+ x{k} {sum})");
        }
        sum
    };
    for k in (0..n).rev() {
        body = format!("(if (int? x{k}) {body} 0)");
    }
    format!(
        "(: narrow : {params}-> Int)
(define (narrow {}) {body})
",
        (0..n)
            .map(|k| format!("x{k}"))
            .collect::<Vec<_>>()
            .join(" ")
    )
}

/// A module of `n` simple well-typed definitions (checker throughput).
pub fn filler_module_src(n: usize) -> String {
    let mut out = String::new();
    for k in 0..n {
        out.push_str(&format!(
            "(: u{k} : [x : Int] [y : Int] -> Int)\n\
             (define (u{k} x y) (+ (* 2 x) (- y {})))\n",
            k % 7
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::check::Checker;
    use rtr_lang::check_source;

    #[test]
    fn fixtures_type_check() {
        let c = Checker::default();
        assert!(check_source(MAX_SRC, &c).is_ok());
        assert!(check_source(DOT_PROD_SRC, &c).is_ok());
        assert!(check_source(XTIME_SRC, &c).is_ok());
        assert!(check_source(&alias_chain_src(8), &c).is_ok());
        assert!(check_source(&narrowing_chain_src(6), &c).is_ok());
        let pure = Checker::with_config(rtr_core::config::CheckerConfig {
            hybrid_env: false,
            ..Default::default()
        });
        assert!(check_source(&narrowing_chain_src(6), &pure).is_ok());
        assert!(check_source(&filler_module_src(5), &c).is_ok());
    }
}
