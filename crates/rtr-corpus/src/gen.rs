//! Seeded corpus generation: a full synthetic library per profile.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::patterns::{build_site, filler_def, Site};
use crate::profiles::{class_counts, LibraryProfile};

/// A generated synthetic library.
#[derive(Clone, Debug)]
pub struct Library {
    /// Which profile produced it.
    pub profile: LibraryProfile,
    /// The access sites (one module each).
    pub sites: Vec<Site>,
    /// Filler (vector-free) definitions, bringing the line count up to
    /// the paper's corpus statistics.
    pub filler: Vec<String>,
}

impl Library {
    /// Total generated lines of code (sites + filler).
    pub fn loc(&self) -> usize {
        let site_lines: usize = self.sites.iter().map(|s| s.plain.lines().count()).sum();
        let filler_lines: usize = self.filler.iter().map(|f| f.lines().count()).sum();
        site_lines + filler_lines
    }

    /// Total distinct vector operations across all sites.
    pub fn num_ops(&self) -> usize {
        self.sites.iter().map(|s| s.num_ops).sum()
    }
}

/// Generates the synthetic library for `profile`, deterministically from
/// `seed`.
///
/// The number of *sites* is chosen so the number of *vector operations*
/// matches the paper's per-library count (a site such as `vec-swap!`
/// contains several operations), and filler definitions are appended
/// until the line count reaches the paper's.
pub fn generate(profile: &LibraryProfile, seed: u64) -> Library {
    let mut rng = StdRng::seed_from_u64(seed ^ fxhash(profile.name));
    let mut sites = Vec::new();
    let mut id = 0usize;

    for (class, want_ops) in class_counts(profile, profile.paper_ops) {
        let mut ops = 0usize;
        while ops < want_ops {
            let mut site = build_site(&mut rng, class, id);
            // Don't overshoot the op budget for the class: retry with the
            // remaining budget if the site is too op-heavy (swap = 4 ops).
            if ops + site.num_ops > want_ops {
                for _ in 0..16 {
                    let retry = build_site(&mut rng, class, id);
                    if ops + retry.num_ops <= want_ops {
                        site = retry;
                        break;
                    }
                }
                if ops + site.num_ops > want_ops {
                    // Accept a 1-2 op overshoot rather than loop forever;
                    // trimmed from the next class by the caller's budget.
                    site.num_ops = want_ops - ops;
                }
            }
            ops += site.num_ops;
            id += 1;
            sites.push(site);
        }
    }

    // Fill to the paper's line count.
    let mut filler = Vec::new();
    let mut loc: usize = sites.iter().map(|s| s.plain.lines().count()).sum();
    let mut fid = 0usize;
    while loc < profile.paper_loc {
        let def = filler_def(&mut rng, fid);
        loc += def.lines().count();
        filler.push(def);
        fid += 1;
    }

    Library {
        profile: profile.clone(),
        sites,
        filler,
    }
}

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Class;
    use crate::profiles::libraries;

    #[test]
    fn generation_is_deterministic() {
        let lib = &libraries()[0];
        let a = generate(lib, 2016);
        let b = generate(lib, 2016);
        assert_eq!(a.sites.len(), b.sites.len());
        assert_eq!(a.sites[0].plain, b.sites[0].plain);
        let c = generate(lib, 2017);
        // Different seed ⇒ (almost surely) different first site.
        assert!(a
            .sites
            .iter()
            .zip(&c.sites)
            .any(|(x, y)| x.plain != y.plain));
    }

    #[test]
    fn op_counts_match_the_paper() {
        for profile in libraries() {
            let lib = generate(&profile, 2016);
            assert_eq!(
                lib.num_ops(),
                profile.paper_ops,
                "{}: op count mismatch",
                profile.name
            );
        }
    }

    #[test]
    fn loc_reaches_paper_scale() {
        for profile in libraries() {
            let lib = generate(&profile, 2016);
            let loc = lib.loc();
            assert!(
                loc >= profile.paper_loc && loc < profile.paper_loc + 10,
                "{}: generated {loc} lines, paper has {}",
                profile.name,
                profile.paper_loc
            );
        }
    }

    #[test]
    fn math_contains_the_unsafe_sites() {
        let libs = libraries();
        let math = libs.iter().find(|l| l.name == "math").expect("math");
        let lib = generate(math, 2016);
        let unsafe_sites = lib
            .sites
            .iter()
            .filter(|s| s.expected == Class::Unsafe)
            .count();
        assert_eq!(unsafe_sites, 2);
    }
}
