//! The staged classification methodology of §5.
//!
//! For every access site we ask, in order: does it verify as written?
//! With stronger annotations? After the local code modification? Each
//! stage mirrors the paper's workflow, and the result is *measured* (by
//! actually running the type checker), never assumed from the template.

use rtr_core::check::Checker;
use rtr_core::diag::Code;
use rtr_lang::check_module_source;

use crate::gen::Library;
use crate::patterns::{Class, Site};

/// The measured outcome for one site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Verified with no changes.
    Auto,
    /// Verified once annotations were strengthened.
    WithAnnotations,
    /// Verified once the code was locally modified.
    WithModifications,
    /// Not verified by any stage.
    Unverified,
}

/// Does a module verify? Decided on the structured diagnostics of the
/// recovering checker: clean means no error-severity [`Code`]s, not a
/// string match against rendered messages. (For well-typed modules the
/// recovering path builds the same environments as the nested
/// fail-fast encoding, so this agrees with the historical
/// `check_source(..).is_ok()` — the `diagnostics_equivalence` tests pin
/// it.)
fn verifies(src: &str, checker: &Checker) -> bool {
    check_module_source(src, checker).is_clean()
}

/// The stable diagnostic codes a site's *plain* (as-written) module
/// produces — every failure in the module, not just the first, thanks
/// to the recovering checker.
pub fn site_error_codes(site: &Site, checker: &Checker) -> Vec<Code> {
    check_module_source(&site.plain, checker)
        .diagnostics
        .iter()
        .filter(|d| d.is_error())
        .map(|d| d.code)
        .collect()
}

/// Classifies one site with the staged methodology.
pub fn classify_site(site: &Site, checker: &Checker) -> Outcome {
    if verifies(&site.plain, checker) {
        return Outcome::Auto;
    }
    if let Some(ann) = &site.annotated {
        if verifies(ann, checker) {
            return Outcome::WithAnnotations;
        }
    }
    if let Some(m) = &site.modified {
        if verifies(m, checker) {
            return Outcome::WithModifications;
        }
    }
    Outcome::Unverified
}

/// Aggregated, op-weighted results for one library.
#[derive(Clone, Debug, Default)]
pub struct Tally {
    /// Ops verified automatically.
    pub auto_ops: usize,
    /// Ops verified with added annotations.
    pub annotated_ops: usize,
    /// Ops verified after code modifications.
    pub modified_ops: usize,
    /// Ops not verified (any reason).
    pub unverified_ops: usize,
    /// Of the unverified: ops whose template is beyond the theory.
    pub beyond_scope_ops: usize,
    /// Of the unverified: ops needing unimplemented features.
    pub unimplemented_ops: usize,
    /// Of the unverified: genuinely unsafe ops (correct rejections).
    pub unsafe_ops: usize,
    /// Sites whose measured outcome disagreed with the template design
    /// (should always be zero; a canary for harness bugs).
    pub misclassified: usize,
}

impl Tally {
    /// Total ops.
    pub fn total(&self) -> usize {
        self.auto_ops + self.annotated_ops + self.modified_ops + self.unverified_ops
    }

    /// Percentage helper.
    pub fn pct(&self, n: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.total() as f64
        }
    }
}

/// Classifies every site in a library.
pub fn classify_library(lib: &Library, checker: &Checker) -> Tally {
    classify_library_jobs(lib, checker, 1)
}

/// Classifies every site in a library, sharding the sites across `jobs`
/// scoped worker threads.
///
/// The checker is shared by reference: its memo tables are `Sync`
/// (mutex-guarded, keyed on globally unique generations and interned
/// ids), so workers transparently share solver-cache verdicts. Outcomes
/// are collected per shard and folded **in site order**, so the tally —
/// and any report rendered from it — is identical to the single-threaded
/// run. Caveat: that guarantee is as strong as the solvers' verdicts are
/// schedule-independent — definite (`Sat`/`Unsat`) verdicts always are,
/// while a query sitting exactly at a conflict/blast budget could in
/// principle flip to `Unknown` under a different interleaving of the
/// shared session; corpus queries run orders of magnitude below those
/// budgets (the equivalence tests pin the end-to-end property).
pub fn classify_library_jobs(lib: &Library, checker: &Checker, jobs: usize) -> Tally {
    let jobs = jobs.max(1).min(lib.sites.len().max(1));
    let outcomes: Vec<Outcome> = if jobs == 1 {
        lib.sites
            .iter()
            .map(|s| classify_site(s, checker))
            .collect()
    } else {
        let chunk = lib.sites.len().div_ceil(jobs);
        let mut out: Vec<Vec<Outcome>> = Vec::with_capacity(jobs);
        std::thread::scope(|scope| {
            let handles: Vec<_> = lib
                .sites
                .chunks(chunk)
                .map(|shard| {
                    scope.spawn(move || {
                        shard
                            .iter()
                            .map(|s| classify_site(s, checker))
                            .collect::<Vec<Outcome>>()
                    })
                })
                .collect();
            for h in handles {
                out.push(h.join().expect("classification worker must not panic"));
            }
        });
        out.into_iter().flatten().collect()
    };
    tally_outcomes(lib, &outcomes)
}

/// Deterministic fold of per-site outcomes (site order) into a tally.
fn tally_outcomes(lib: &Library, outcomes: &[Outcome]) -> Tally {
    let mut t = Tally::default();
    for (site, &outcome) in lib.sites.iter().zip(outcomes) {
        match outcome {
            Outcome::Auto => t.auto_ops += site.num_ops,
            Outcome::WithAnnotations => t.annotated_ops += site.num_ops,
            Outcome::WithModifications => t.modified_ops += site.num_ops,
            Outcome::Unverified => {
                t.unverified_ops += site.num_ops;
                match site.expected {
                    Class::BeyondScope => t.beyond_scope_ops += site.num_ops,
                    Class::Unimplemented => t.unimplemented_ops += site.num_ops,
                    Class::Unsafe => t.unsafe_ops += site.num_ops,
                    _ => {}
                }
            }
        }
        let expected = match site.expected {
            Class::Auto => Outcome::Auto,
            Class::Annotation => Outcome::WithAnnotations,
            Class::Modification => Outcome::WithModifications,
            _ => Outcome::Unverified,
        };
        if outcome != expected {
            t.misclassified += 1;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::profiles::libraries;
    use rtr_core::config::CheckerConfig;

    #[test]
    fn staged_methodology_on_a_small_sample() {
        // A fast smoke test over a small slice of each library (the full
        // run is the fig9 binary / benchmark).
        let checker = Checker::default();
        for profile in libraries() {
            let lib = generate(&profile, 2016);
            let sample = Library {
                profile: lib.profile.clone(),
                sites: lib.sites.iter().take(12).cloned().collect(),
                filler: Vec::new(),
            };
            let tally = classify_library(&sample, &checker);
            assert_eq!(
                tally.misclassified, 0,
                "{}: measured classes diverged from design",
                profile.name
            );
        }
    }

    #[test]
    fn diagnostics_equivalence_with_the_fail_fast_shim() {
        // The classifier's verdict source moved from fail-fast
        // `check_source` to the recovering `check_module_source`; the
        // two must agree on every staged variant, or fig9 would drift.
        let checker = Checker::default();
        for profile in libraries() {
            let lib = generate(&profile, 7);
            for site in lib.sites.iter().take(8) {
                for src in [
                    Some(&site.plain),
                    site.annotated.as_ref(),
                    site.modified.as_ref(),
                ]
                .into_iter()
                .flatten()
                {
                    let strict = rtr_lang::check_source(src, &checker).is_ok();
                    let report = rtr_lang::check_module_source(src, &checker);
                    assert_eq!(
                        strict,
                        report.is_clean(),
                        "{}: recovery disagrees with fail-fast on\n{src}",
                        site.pattern
                    );
                }
            }
        }
    }

    #[test]
    fn unsafe_sites_produce_stable_mismatch_codes() {
        // The §4.2 mutable cache-size bug and friends are rejected with
        // machine-readable codes, not matched-on message strings.
        let checker = Checker::default();
        let mut saw_unsafe = false;
        for profile in libraries() {
            let lib = generate(&profile, 2016);
            for site in lib
                .sites
                .iter()
                .filter(|s| s.expected == Class::Unsafe)
                .take(3)
            {
                let codes = site_error_codes(site, &checker);
                assert!(
                    !codes.is_empty(),
                    "{}: unsafe site must produce diagnostics",
                    site.pattern
                );
                assert!(
                    codes.iter().all(|c| c.as_str().starts_with('E')),
                    "{}: unexpected codes {codes:?}",
                    site.pattern
                );
                saw_unsafe = true;
            }
        }
        assert!(saw_unsafe, "the corpus contains unsafe sites");
    }

    #[test]
    fn lambda_tr_baseline_verifies_nothing() {
        // The λTR baseline (stock occurrence typing) cannot prove any
        // refinement-typed access: its auto column is 0%.
        let baseline = Checker::with_config(CheckerConfig::lambda_tr());
        let profile = &libraries()[0];
        let lib = generate(profile, 2016);
        for site in lib.sites.iter().take(10) {
            assert_eq!(
                classify_site(site, &baseline),
                Outcome::Unverified,
                "λTR unexpectedly verified {}",
                site.pattern
            );
        }
    }
}
