//! The staged classification methodology of §5.
//!
//! For every access site we ask, in order: does it verify as written?
//! With stronger annotations? After the local code modification? Each
//! stage mirrors the paper's workflow, and the result is *measured* (by
//! actually running the type checker), never assumed from the template.

use rtr_core::check::Checker;
use rtr_lang::check_source;

use crate::gen::Library;
use crate::patterns::{Class, Site};

/// The measured outcome for one site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Verified with no changes.
    Auto,
    /// Verified once annotations were strengthened.
    WithAnnotations,
    /// Verified once the code was locally modified.
    WithModifications,
    /// Not verified by any stage.
    Unverified,
}

/// Classifies one site with the staged methodology.
pub fn classify_site(site: &Site, checker: &Checker) -> Outcome {
    if check_source(&site.plain, checker).is_ok() {
        return Outcome::Auto;
    }
    if let Some(ann) = &site.annotated {
        if check_source(ann, checker).is_ok() {
            return Outcome::WithAnnotations;
        }
    }
    if let Some(m) = &site.modified {
        if check_source(m, checker).is_ok() {
            return Outcome::WithModifications;
        }
    }
    Outcome::Unverified
}

/// Aggregated, op-weighted results for one library.
#[derive(Clone, Debug, Default)]
pub struct Tally {
    /// Ops verified automatically.
    pub auto_ops: usize,
    /// Ops verified with added annotations.
    pub annotated_ops: usize,
    /// Ops verified after code modifications.
    pub modified_ops: usize,
    /// Ops not verified (any reason).
    pub unverified_ops: usize,
    /// Of the unverified: ops whose template is beyond the theory.
    pub beyond_scope_ops: usize,
    /// Of the unverified: ops needing unimplemented features.
    pub unimplemented_ops: usize,
    /// Of the unverified: genuinely unsafe ops (correct rejections).
    pub unsafe_ops: usize,
    /// Sites whose measured outcome disagreed with the template design
    /// (should always be zero; a canary for harness bugs).
    pub misclassified: usize,
}

impl Tally {
    /// Total ops.
    pub fn total(&self) -> usize {
        self.auto_ops + self.annotated_ops + self.modified_ops + self.unverified_ops
    }

    /// Percentage helper.
    pub fn pct(&self, n: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.total() as f64
        }
    }
}

/// Classifies every site in a library.
pub fn classify_library(lib: &Library, checker: &Checker) -> Tally {
    let mut t = Tally::default();
    for site in &lib.sites {
        let outcome = classify_site(site, checker);
        match outcome {
            Outcome::Auto => t.auto_ops += site.num_ops,
            Outcome::WithAnnotations => t.annotated_ops += site.num_ops,
            Outcome::WithModifications => t.modified_ops += site.num_ops,
            Outcome::Unverified => {
                t.unverified_ops += site.num_ops;
                match site.expected {
                    Class::BeyondScope => t.beyond_scope_ops += site.num_ops,
                    Class::Unimplemented => t.unimplemented_ops += site.num_ops,
                    Class::Unsafe => t.unsafe_ops += site.num_ops,
                    _ => {}
                }
            }
        }
        let expected = match site.expected {
            Class::Auto => Outcome::Auto,
            Class::Annotation => Outcome::WithAnnotations,
            Class::Modification => Outcome::WithModifications,
            _ => Outcome::Unverified,
        };
        if outcome != expected {
            t.misclassified += 1;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::profiles::libraries;
    use rtr_core::config::CheckerConfig;

    #[test]
    fn staged_methodology_on_a_small_sample() {
        // A fast smoke test over a small slice of each library (the full
        // run is the fig9 binary / benchmark).
        let checker = Checker::default();
        for profile in libraries() {
            let lib = generate(&profile, 2016);
            let sample = Library {
                profile: lib.profile.clone(),
                sites: lib.sites.iter().take(12).cloned().collect(),
                filler: Vec::new(),
            };
            let tally = classify_library(&sample, &checker);
            assert_eq!(
                tally.misclassified, 0,
                "{}: measured classes diverged from design",
                profile.name
            );
        }
    }

    #[test]
    fn lambda_tr_baseline_verifies_nothing() {
        // The λTR baseline (stock occurrence typing) cannot prove any
        // refinement-typed access: its auto column is 0%.
        let baseline = Checker::with_config(CheckerConfig::lambda_tr());
        let profile = &libraries()[0];
        let lib = generate(profile, 2016);
        for site in lib.sites.iter().take(10) {
            assert_eq!(
                classify_site(site, &baseline),
                Outcome::Unverified,
                "λTR unexpectedly verified {}",
                site.pattern
            );
        }
    }
}
