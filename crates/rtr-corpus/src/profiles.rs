//! Library profiles: the corpus statistics and verifiability mixes the
//! paper reports for `math`, `plot` and `pict3d` (§5, Fig. 9).

use crate::patterns::Class;

/// The published statistics of one library in the case study.
#[derive(Clone, Debug)]
pub struct LibraryProfile {
    /// Library name.
    pub name: &'static str,
    /// Lines of code the paper reports.
    pub paper_loc: usize,
    /// Unique vector operations the paper reports.
    pub paper_ops: usize,
    /// Fraction of operations per verifiability class, as read off
    /// Figure 9 and §5.1 (fractions of *all* ops; they sum to 1).
    pub mix: Vec<(Class, f64)>,
    /// The paper's Fig. 9 bar values `(auto, annotations, modifications)`
    /// in percent, used as the reference column in reports.
    pub paper_bars: (f64, f64, f64),
}

/// The three libraries of the case study.
pub fn libraries() -> Vec<LibraryProfile> {
    vec![
        // plot: "unusually high automatic success rate … pattern matching
        // on vectors and loops using a vector's length as an explicit
        // bound were extremely common" (§5). Fig. 9: 74% auto + 6% after
        // code modifications.
        LibraryProfile {
            name: "plot",
            paper_loc: 14_987,
            paper_ops: 655,
            mix: vec![
                (Class::Auto, 0.74),
                (Class::Modification, 0.06),
                (Class::BeyondScope, 0.14),
                (Class::Unimplemented, 0.06),
            ],
            paper_bars: (74.0, 0.0, 6.0),
        },
        // pict3d: 13% auto + 33% after code modifications (Fig. 9).
        LibraryProfile {
            name: "pict3d",
            paper_loc: 19_345,
            paper_ops: 129,
            mix: vec![
                (Class::Auto, 0.13),
                (Class::Modification, 0.33),
                (Class::BeyondScope, 0.40),
                (Class::Unimplemented, 0.14),
            ],
            paper_bars: (13.0, 0.0, 33.0),
        },
        // math (§5.1 in-depth): 25% auto, +34% annotations, +13% code
        // modified, 22% beyond scope, 6% unimplemented, 2 unsafe ops.
        LibraryProfile {
            name: "math",
            paper_loc: 22_503,
            paper_ops: 301,
            mix: vec![
                (Class::Auto, 0.25),
                (Class::Annotation, 0.34),
                (Class::Modification, 0.13),
                (Class::BeyondScope, 0.213), // 22% minus the 2 unsafe ops
                (Class::Unimplemented, 0.06),
                (Class::Unsafe, 0.007), // the 2 ops found and patched
            ],
            paper_bars: (25.0, 34.0, 13.0),
        },
    ]
}

/// Converts a mix into integer per-class counts summing to `total`,
/// largest-remainder rounding.
pub fn class_counts(profile: &LibraryProfile, total: usize) -> Vec<(Class, usize)> {
    let mut out: Vec<(Class, usize, f64)> = profile
        .mix
        .iter()
        .map(|&(c, f)| {
            let exact = f * total as f64;
            (c, exact.floor() as usize, exact - exact.floor())
        })
        .collect();
    let assigned: usize = out.iter().map(|(_, n, _)| n).sum();
    let mut remainder = total.saturating_sub(assigned);
    // Give leftover ops to the largest fractional remainders.
    let mut order: Vec<usize> = (0..out.len()).collect();
    order.sort_by(|&a, &b| out[b].2.partial_cmp(&out[a].2).expect("finite"));
    for i in order {
        if remainder == 0 {
            break;
        }
        out[i].1 += 1;
        remainder -= 1;
    }
    // The math library's two unsafe ops are an exact count in the paper.
    if profile.name == "math" {
        ensure_exact(&mut out, Class::Unsafe, 2);
    }
    out.into_iter().map(|(c, n, _)| (c, n)).collect()
}

fn ensure_exact(out: &mut [(Class, usize, f64)], class: Class, want: usize) {
    let Some(pos) = out.iter().position(|(c, _, _)| *c == class) else {
        return;
    };
    let have = out[pos].1;
    if have == want {
        return;
    }
    // Borrow from / donate to the largest other bucket.
    let donor = (0..out.len())
        .filter(|&i| i != pos)
        .max_by_key(|&i| out[i].1)
        .expect("at least two classes");
    if have < want {
        let need = want - have;
        out[donor].1 = out[donor].1.saturating_sub(need);
        out[pos].1 = want;
    } else {
        out[donor].1 += have - want;
        out[pos].1 = want;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_statistics_match() {
        let libs = libraries();
        assert_eq!(libs.len(), 3);
        let total_loc: usize = libs.iter().map(|l| l.paper_loc).sum();
        assert!(
            total_loc > 56_000,
            "the paper reports >56k lines, got {total_loc}"
        );
        let total_ops: usize = libs.iter().map(|l| l.paper_ops).sum();
        assert_eq!(total_ops, 1085);
    }

    #[test]
    fn mixes_sum_to_one() {
        for lib in libraries() {
            let s: f64 = lib.mix.iter().map(|(_, f)| f).sum();
            assert!((s - 1.0).abs() < 1e-6, "{}: mix sums to {s}", lib.name);
        }
    }

    #[test]
    fn counts_sum_to_totals() {
        for lib in libraries() {
            let counts = class_counts(&lib, lib.paper_ops);
            let total: usize = counts.iter().map(|(_, n)| n).sum();
            assert_eq!(total, lib.paper_ops, "{}", lib.name);
        }
    }

    #[test]
    fn math_has_exactly_two_unsafe_ops() {
        let libs = libraries();
        let math = libs.iter().find(|l| l.name == "math").expect("math");
        let counts = class_counts(math, math.paper_ops);
        let unsafe_n = counts
            .iter()
            .find(|(c, _)| *c == Class::Unsafe)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert_eq!(unsafe_n, 2);
    }

    #[test]
    fn aggregate_auto_rate_is_about_half() {
        // §5: "approximately 50% of the vector accesses are provably safe
        // with no code changes".
        let libs = libraries();
        let auto: f64 = libs
            .iter()
            .map(|l| {
                l.paper_ops as f64
                    * l.mix
                        .iter()
                        .find(|(c, _)| *c == Class::Auto)
                        .map(|(_, f)| *f)
                        .unwrap_or(0.0)
            })
            .sum();
        let total: f64 = libs.iter().map(|l| l.paper_ops as f64).sum();
        let rate = auto / total;
        assert!((0.48..0.58).contains(&rate), "aggregate auto rate {rate}");
    }
}
