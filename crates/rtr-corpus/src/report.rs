//! Table/figure rendering: regenerates the paper's §5 artifacts.

use std::fmt::Write as _;

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;

use crate::classify::{classify_library_jobs, Tally};
use crate::gen::{generate, Library};
use crate::profiles::libraries;

/// The full measured case study: one (library, tally) per profile, plus
/// the λTR baseline tallies when requested.
pub struct CaseStudy {
    /// Generated libraries.
    pub libs: Vec<Library>,
    /// RTR tallies, parallel to `libs`.
    pub tallies: Vec<Tally>,
    /// λTR baseline tallies, if run.
    pub baseline: Option<Vec<Tally>>,
}

/// Runs the whole case study (generation + classification).
pub fn run_case_study(seed: u64, with_baseline: bool) -> CaseStudy {
    run_case_study_jobs(seed, with_baseline, 1)
}

/// Runs the case study with site classification sharded across `jobs`
/// worker threads (see [`crate::classify::classify_library_jobs`]). The
/// produced study — and every table rendered from it — is byte-identical
/// to the single-threaded run.
pub fn run_case_study_jobs(seed: u64, with_baseline: bool, jobs: usize) -> CaseStudy {
    let checker = Checker::default();
    let libs: Vec<Library> = libraries().iter().map(|p| generate(p, seed)).collect();
    let tallies: Vec<Tally> = libs
        .iter()
        .map(|l| classify_library_jobs(l, &checker, jobs))
        .collect();
    let baseline = with_baseline.then(|| {
        let tr = Checker::with_config(CheckerConfig::lambda_tr());
        libs.iter()
            .map(|l| classify_library_jobs(l, &tr, jobs))
            .collect()
    });
    CaseStudy {
        libs,
        tallies,
        baseline,
    }
}

/// The corpus statistics table (§5's library descriptions).
pub fn stats_table(study: &CaseStudy) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "corpus statistics (paper §5 / generated)");
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "library", "paper LoC", "gen LoC", "paper ops", "gen ops"
    );
    for lib in &study.libs {
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>12} {:>12} {:>12}",
            lib.profile.name,
            lib.profile.paper_loc,
            lib.loc(),
            lib.profile.paper_ops,
            lib.num_ops()
        );
    }
    let total_gen: usize = study.libs.iter().map(|l| l.loc()).sum();
    let total_ops: usize = study.libs.iter().map(|l| l.num_ops()).sum();
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "total", 56_835, total_gen, 1_085, total_ops
    );
    out
}

/// Figure 9: % of vector ops verifiable per library, stacked by stage,
/// with the paper's bar values as the reference column.
pub fn fig9_table(study: &CaseStudy) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9 — safe-vec-ref case study (measured vs paper)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>10} {:>10} | {:>22}",
        "library", "auto%", "+annot%", "+modif%", "total%", "paper (auto/ann/mod)"
    );
    for (lib, t) in study.libs.iter().zip(&study.tallies) {
        let (pa, pn, pm) = lib.profile.paper_bars;
        let _ = writeln!(
            out,
            "{:<8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} | {:>8.0} /{:>4.0} /{:>4.0}",
            lib.profile.name,
            t.pct(t.auto_ops),
            t.pct(t.annotated_ops),
            t.pct(t.modified_ops),
            t.pct(t.auto_ops + t.annotated_ops + t.modified_ops),
            pa,
            pn,
            pm
        );
    }
    // Aggregate automatic rate: the paper's "approximately 50%".
    let auto: usize = study.tallies.iter().map(|t| t.auto_ops).sum();
    let total: usize = study.tallies.iter().map(|t| t.total()).sum();
    let _ = writeln!(
        out,
        "{:<8} {:>10.1}   (paper: \"approximately 50% … with no new annotations\")",
        "overall",
        100.0 * auto as f64 / total as f64
    );
    if let Some(baseline) = &study.baseline {
        let bauto: usize = baseline
            .iter()
            .map(|t| t.auto_ops + t.annotated_ops + t.modified_ops)
            .sum();
        let _ = writeln!(
            out,
            "{:<8} {:>10.1}   (λTR baseline: occurrence typing without theories)",
            "baseline",
            100.0 * bauto as f64 / total as f64
        );
    }
    let mis: usize = study.tallies.iter().map(|t| t.misclassified).sum();
    let _ = writeln!(out, "misclassified sites: {mis} (must be 0)");
    out
}

/// §5.1's math-library breakdown.
pub fn math_breakdown(study: &CaseStudy) -> String {
    let mut out = String::new();
    let idx = study
        .libs
        .iter()
        .position(|l| l.profile.name == "math")
        .expect("math library present");
    let t = &study.tallies[idx];
    let _ = writeln!(out, "math library breakdown (measured vs §5.1)");
    let rows: [(&str, usize, f64); 6] = [
        ("automatically verified", t.auto_ops, 25.0),
        ("annotations added", t.annotated_ops, 34.0),
        ("code modified", t.modified_ops, 13.0),
        ("beyond scope", t.beyond_scope_ops, 22.0),
        ("unimplemented features", t.unimplemented_ops, 6.0),
        ("unsafe code (ops)", t.unsafe_ops, 2.0), // the paper counts 2 ops
    ];
    for (label, ops, paper) in rows {
        let measured = if label == "unsafe code (ops)" {
            ops as f64
        } else {
            t.pct(ops)
        };
        let _ = writeln!(out, "{label:<26} {measured:>8.1}   (paper: {paper:>5.1})");
    }
    let verified = t.pct(t.auto_ops + t.annotated_ops + t.modified_ops);
    let _ = writeln!(
        out,
        "{:<26} {verified:>8.1}   (paper:  72.0)",
        "total verifiable %"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end (small-seed) sanity: we only check table *shape* here;
    /// the full-accuracy run is exercised by the fig9 binary and asserted
    /// in the integration test suite.
    #[test]
    fn tables_render() {
        let study = run_case_study(2016, false);
        let stats = stats_table(&study);
        assert!(stats.contains("plot") && stats.contains("22503"));
        let fig9 = fig9_table(&study);
        assert!(fig9.contains("overall"));
        let math = math_breakdown(&study);
        assert!(math.contains("unsafe code"));
    }
}
