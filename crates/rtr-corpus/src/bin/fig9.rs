//! `fig9` — regenerates the paper's §5 evaluation artifacts.
//!
//! ```text
//! fig9                        # Figure 9 (the main case-study table)
//! fig9 --table stats          # corpus statistics (§5 library table)
//! fig9 --table math-breakdown # §5.1 math-library categories
//! fig9 --baseline             # adds the λTR baseline row
//! fig9 --seed N               # corpus seed (default 2016)
//! fig9 --jobs N               # classification worker threads
//!                             # (default: available parallelism)
//! ```

use rtr_corpus::report::{fig9_table, math_breakdown, run_case_study_jobs, stats_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut table = "fig9".to_owned();
    let mut seed = 2016u64;
    let mut baseline = false;
    let mut jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table" => {
                i += 1;
                table = args.get(i).cloned().unwrap_or_else(|| "fig9".into());
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(2016);
            }
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or(jobs);
            }
            "--baseline" => baseline = true,
            "--help" | "-h" => {
                println!(
                    "usage: fig9 [--table fig9|stats|math-breakdown] [--seed N] [--baseline] [--jobs N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!("generating corpora and classifying 1085 vector operations ({jobs} worker(s))…");
    let study = run_case_study_jobs(seed, baseline, jobs);
    match table.as_str() {
        "stats" => print!("{}", stats_table(&study)),
        "math-breakdown" => print!("{}", math_breakdown(&study)),
        _ => print!("{}", fig9_table(&study)),
    }
}
