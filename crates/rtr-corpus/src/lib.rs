//! # rtr-corpus — the §5 case study, reproduced
//!
//! The paper evaluates RTR by replacing every vector access in three large
//! Typed Racket libraries (`math`, `plot`, `pict3d`; 56k lines, 1,085
//! unique vector operations) with its `safe-` counterpart and measuring
//! how many still type check — automatically, after added annotations, or
//! after local code modifications (Figure 9).
//!
//! We do not have the Racket libraries; per the reproduction's
//! substitution policy, this crate generates *synthetic corpora* from the
//! access-pattern distributions the paper reports for each library (see
//! `profiles`), then runs the same staged methodology (`classify`) and
//! regenerates the paper's tables (`report`). Because each pattern's
//! verifiability class is intrinsic to its shape, matching the pattern
//! mix reproduces the figure's shape; the absolute counts match the
//! paper's per-library op counts exactly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod gen;
pub mod patterns;
pub mod profiles;
pub mod report;
