//! Vector-access pattern templates.
//!
//! Each template generates a small self-contained RTR module containing a
//! vector access whose *verifiability class* is determined by its shape —
//! the classes the paper's §5 case study tallies:
//!
//! * **Auto** — verifies with every access replaced by its `safe-`
//!   counterpart and no other change (the paper's methodology);
//! * **Annotation** — verifies only after strengthening a type annotation
//!   (§5.1 "Annotations Added", e.g. the `Nat` loop counter that needs an
//!   upper bound);
//! * **Modification** — verifies only after a small local code change
//!   (§5.1 "Code Modified", e.g. `vec-swap!`'s added index guards);
//! * **BeyondScope** — the invariant is outside the linear theory
//!   (§5.1 "Beyond our scope", e.g. indices from higher-order code);
//! * **Unimplemented** — would be amenable but needs an unimplemented
//!   feature (§5.1, e.g. dependent pair/record fields);
//! * **Unsafe** — genuinely unsafe code the checker must reject
//!   (§4.2/§5.1's mutable `cache-size` bug).

use rand::Rng;

/// The verifiability class a site is designed to land in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Class {
    /// Verifies automatically.
    Auto,
    /// Verifies after a type-annotation strengthening.
    Annotation,
    /// Verifies after a local code modification.
    Modification,
    /// Invariant outside the (linear) theory.
    BeyondScope,
    /// Needs a feature the implementation lacks.
    Unimplemented,
    /// Unsafe code: must NOT verify (and the paper patched it).
    Unsafe,
}

impl Class {
    /// Human-readable label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            Class::Auto => "automatically verified",
            Class::Annotation => "verified with type annotations added",
            Class::Modification => "verified after code modifications",
            Class::BeyondScope => "beyond scope",
            Class::Unimplemented => "unimplemented features",
            Class::Unsafe => "unsafe code",
        }
    }
}

/// A generated access site: the original source plus the staged variants
/// the paper's methodology tries in order.
#[derive(Clone, Debug)]
pub struct Site {
    /// Unique id within its library.
    pub id: usize,
    /// The template that produced it (for reporting).
    pub pattern: &'static str,
    /// The class the template is designed to land in.
    pub expected: Class,
    /// The module as written (accesses already `safe-`).
    pub plain: String,
    /// With stronger annotations, if the template supports it.
    pub annotated: Option<String>,
    /// With local code modifications, if the template supports it.
    pub modified: Option<String>,
    /// Number of distinct vector operations in the module.
    pub num_ops: usize,
}

/// Builds one site of the requested class, with template choice and
/// cosmetic variety driven by `rng`.
pub fn build_site<R: Rng>(rng: &mut R, class: Class, id: usize) -> Site {
    match class {
        Class::Auto => auto_site(rng, id),
        Class::Annotation => annotation_site(rng, id),
        Class::Modification => modification_site(rng, id),
        Class::BeyondScope => beyond_scope_site(rng, id),
        Class::Unimplemented => unimplemented_site(rng, id),
        Class::Unsafe => unsafe_site(rng, id),
    }
}

fn auto_site<R: Rng>(rng: &mut R, id: usize) -> Site {
    match rng.gen_range(0..5u8) {
        // A1 — length-bounded for/sum loop (plot's dominant pattern).
        0 => Site {
            id,
            pattern: "length-bounded-loop",
            expected: Class::Auto,
            plain: format!(
                "(: sum{id} : [A : (Vecof Int)] -> Int)\n\
                 (define (sum{id} A)\n\
                 \x20 (for/sum ([i (in-range (len A))])\n\
                 \x20   (safe-vec-ref A i)))\n"
            ),
            annotated: None,
            modified: None,
            num_ops: 1,
        },
        // A2 — explicit two-sided guard.
        1 => {
            let default = rng.gen_range(-3..=3);
            Site {
                id,
                pattern: "guarded-access",
                expected: Class::Auto,
                plain: format!(
                    "(: ref{id} : [v : (Vecof Int)] [i : Int] -> Int)\n\
                     (define (ref{id} v i)\n\
                     \x20 (if (and (<= 0 i) (< i (len v)))\n\
                     \x20     (safe-vec-ref v i)\n\
                     \x20     {default}))\n"
                ),
                annotated: None,
                modified: None,
                num_ops: 1,
            }
        }
        // A3 — "pattern matching" on the vector's length (fixed arity),
        // extremely common in plot per §5.
        2 => {
            let n = rng.gen_range(2..=4usize);
            let adds = (0..n)
                .map(|k| format!("(safe-vec-ref v {k})"))
                .collect::<Vec<_>>()
                .join(" ");
            let sum = (0..n).fold("0".to_owned(), |acc, _| format!("(+ {acc} X)"));
            let mut body = sum;
            for k in (0..n).rev() {
                body = body.replacen('X', &format!("(safe-vec-ref v {k})"), 1);
            }
            let _ = adds;
            Site {
                id,
                pattern: "length-match",
                expected: Class::Auto,
                plain: format!(
                    "(: norm{id} : [v : (Vecof Int)] -> Int)\n\
                     (define (norm{id} v)\n\
                     \x20 (if (= (len v) {n})\n\
                     \x20     {body}\n\
                     \x20     0))\n"
                ),
                annotated: None,
                modified: None,
                num_ops: n,
            }
        }
        // A4 — literal vector, constant index.
        3 => {
            let n = rng.gen_range(1..=5usize);
            let items = (0..n)
                .map(|_| rng.gen_range(-9..=9i64).to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let idx = rng.gen_range(0..n);
            Site {
                id,
                pattern: "literal-vector",
                expected: Class::Auto,
                plain: format!(
                    "(define table{id} (vec {items}))\n\
                     (safe-vec-ref table{id} {idx})\n"
                ),
                annotated: None,
                modified: None,
                num_ops: 1,
            }
        }
        // A5 — dot product with the §2.1 length guard.
        _ => Site {
            id,
            pattern: "guarded-dot-prod",
            expected: Class::Auto,
            plain: format!(
                "(: dot{id} : [A : (Vecof Int)] [B : (Vecof Int)] -> Int)\n\
                 (define (dot{id} A B)\n\
                 \x20 (begin\n\
                 \x20   (unless (= (len A) (len B))\n\
                 \x20     (error \"invalid vector lengths!\"))\n\
                 \x20   (for/sum ([i (in-range (len A))])\n\
                 \x20     (* (safe-vec-ref A i) (safe-vec-ref B i)))))\n"
            ),
            annotated: None,
            modified: None,
            num_ops: 2,
        },
    }
}

fn annotation_site<R: Rng>(rng: &mut R, id: usize) -> Site {
    match rng.gen_range(0..2u8) {
        // N1 — the §5.1 recursive loop: `Nat` lacks the upper bound.
        0 => {
            let plain = format!(
                "(: prod{id} : [ds : (Vecof Int)] -> Int)\n\
                 (define (prod{id} ds)\n\
                 \x20 (let loop : Int ([i : Nat (len ds)] [res : Int 1])\n\
                 \x20   (cond\n\
                 \x20     [(zero? i) res]\n\
                 \x20     [else (loop (- i 1) (* res (safe-vec-ref ds (- i 1))))])))\n"
            );
            let annotated = plain.replace(
                "[i : Nat (len ds)]",
                "[i : (Refine [i : Int] (<= 0 i (len ds))) (len ds)]",
            );
            Site {
                id,
                pattern: "recursive-loop-nat",
                expected: Class::Annotation,
                plain,
                annotated: Some(annotated),
                modified: None,
                num_ops: 1,
            }
        }
        // N2 — a helper whose index parameter needs the refined type.
        _ => {
            let plain = format!(
                "(: pick{id} : [v : (Vecof Int)] [i : Nat] -> Int)\n\
                 (define (pick{id} v i) (safe-vec-ref v i))\n"
            );
            let annotated = format!(
                "(: pick{id} : [v : (Vecof Int)] \
                 [i : (Refine [i : Int] (and (<= 0 i) (< i (len v))))] -> Int)\n\
                 (define (pick{id} v i) (safe-vec-ref v i))\n"
            );
            Site {
                id,
                pattern: "helper-index-param",
                expected: Class::Annotation,
                plain,
                annotated: Some(annotated),
                modified: None,
                num_ops: 1,
            }
        }
    }
}

fn modification_site<R: Rng>(rng: &mut R, id: usize) -> Site {
    match rng.gen_range(0..3u8) {
        // M1 — vec-swap! (§5.1): guards added around the four operations.
        0 => {
            let plain = format!(
                "(: swap{id} : [vs : (Vecof Int)] [i : Int] [j : Int] -> Unit)\n\
                 (define (swap{id} vs i j)\n\
                 \x20 (unless (= i j)\n\
                 \x20   (let ([i-val (safe-vec-ref vs i)]\n\
                 \x20         [j-val (safe-vec-ref vs j)])\n\
                 \x20     (begin\n\
                 \x20       (safe-vec-set! vs i j-val)\n\
                 \x20       (safe-vec-set! vs j i-val)))))\n"
            );
            let modified = format!(
                "(: swap{id} : [vs : (Vecof Int)] [i : Int] [j : Int] -> Unit)\n\
                 (define (swap{id} vs i j)\n\
                 \x20 (unless (= i j)\n\
                 \x20   (cond\n\
                 \x20     [(and (< -1 i (len vs))\n\
                 \x20           (< -1 j (len vs)))\n\
                 \x20      (let ([i-val (safe-vec-ref vs i)]\n\
                 \x20            [j-val (safe-vec-ref vs j)])\n\
                 \x20        (begin\n\
                 \x20          (safe-vec-set! vs i j-val)\n\
                 \x20          (safe-vec-set! vs j i-val)))]\n\
                 \x20     [else (error \"bad index(s)!\")])))\n"
            );
            Site {
                id,
                pattern: "vec-swap",
                expected: Class::Modification,
                plain,
                annotated: None,
                modified: Some(modified),
                num_ops: 4,
            }
        }
        // M2 — arithmetic on the index; a dynamic check makes it safe.
        1 => {
            let off = rng.gen_range(1..=3i64);
            let plain = format!(
                "(: shift{id} : [v : (Vecof Int)] [i : Int] -> Int)\n\
                 (define (shift{id} v i) (safe-vec-ref v (+ i {off})))\n"
            );
            let modified = format!(
                "(: shift{id} : [v : (Vecof Int)] [i : Int] -> Int)\n\
                 (define (shift{id} v i)\n\
                 \x20 (let ([j (+ i {off})])\n\
                 \x20   (if (and (<= 0 j) (< j (len v)))\n\
                 \x20       (safe-vec-ref v j)\n\
                 \x20       (error \"bad index\"))))\n"
            );
            Site {
                id,
                pattern: "index-arith",
                expected: Class::Modification,
                plain,
                annotated: None,
                modified: Some(modified),
                num_ops: 1,
            }
        }
        // M3 — dot product missing the length guard; add it (§2.1's
        // middle ground).
        _ => {
            let plain = format!(
                "(: dotm{id} : [A : (Vecof Int)] [B : (Vecof Int)] -> Int)\n\
                 (define (dotm{id} A B)\n\
                 \x20 (for/sum ([i (in-range (len A))])\n\
                 \x20   (* (safe-vec-ref A i) (safe-vec-ref B i))))\n"
            );
            let modified = format!(
                "(: dotm{id} : [A : (Vecof Int)] [B : (Vecof Int)] -> Int)\n\
                 (define (dotm{id} A B)\n\
                 \x20 (begin\n\
                 \x20   (unless (= (len A) (len B))\n\
                 \x20     (error \"invalid vector lengths!\"))\n\
                 \x20   (for/sum ([i (in-range (len A))])\n\
                 \x20     (* (safe-vec-ref A i) (safe-vec-ref B i)))))\n"
            );
            Site {
                id,
                pattern: "unguarded-dot-prod",
                expected: Class::Modification,
                plain,
                annotated: None,
                modified: Some(modified),
                num_ops: 2,
            }
        }
    }
}

fn beyond_scope_site<R: Rng>(rng: &mut R, id: usize) -> Site {
    match rng.gen_range(0..2u8) {
        // B1 — the index flows through an opaque higher-order function
        // (the paper's `(apply max (map len dss))` analogue).
        0 => Site {
            id,
            pattern: "higher-order-index",
            expected: Class::BeyondScope,
            plain: format!(
                "(: ho{id} : [v : (Vecof Int)] [f : ([x : Int] -> Int)] [i : Int] -> Int)\n\
                 (define (ho{id} v f i) (safe-vec-ref v (f i)))\n"
            ),
            annotated: None,
            modified: None,
            num_ops: 1,
        },
        // B2 — non-linear index arithmetic: outside the linear theory
        // even with a guard (the product has no symbolic object).
        _ => Site {
            id,
            pattern: "nonlinear-index",
            expected: Class::BeyondScope,
            plain: format!(
                "(: sq{id} : [v : (Vecof Int)] [i : Int] -> Int)\n\
                 (define (sq{id} v i)\n\
                 \x20 (if (and (<= 0 (* i i)) (< (* i i) (len v)))\n\
                 \x20     (safe-vec-ref v (* i i))\n\
                 \x20     0))\n"
            ),
            annotated: None,
            modified: None,
            num_ops: 1,
        },
    }
}

fn unimplemented_site<R: Rng>(rng: &mut R, id: usize) -> Site {
    // The un-enriched `quotient` primitive (§5.1 "unimplemented
    // features"): division by a constant *is* linearizable, but the base
    // environment does not teach the solver about it, so the guard on the
    // raw quotient expression carries no information. (Guards on a
    // let-bound result would work — these sites test the raw expression,
    // as the original code did.)
    let d = rng.gen_range(2..=4);
    Site {
        id,
        pattern: "unenriched-quotient",
        expected: Class::Unimplemented,
        plain: format!(
            "(: half{id} : [v : (Vecof Int)] [i : Int] -> Int)\n\
             (define (half{id} v i)\n\
             \x20 (if (and (<= 0 (quotient i {d})) (< (quotient i {d}) (len v)))\n\
             \x20     (safe-vec-ref v (quotient i {d}))\n\
             \x20     0))\n"
        ),
        annotated: None,
        modified: None,
        num_ops: 1,
    }
}

fn unsafe_site<R: Rng>(_rng: &mut R, id: usize) -> Site {
    // §4.2's mutable cache-size bug: a test on a mutable variable guards
    // the access; a concurrent shrink invalidates it. Must NOT verify.
    Site {
        id,
        pattern: "mutable-cache",
        expected: Class::Unsafe,
        plain: format!(
            "(: cache{id} : [data : (Vecof Int)] -> Int)\n\
             (define (cache{id} data)\n\
             \x20 (let ([cache-size 0])\n\
             \x20   (begin\n\
             \x20     (set! cache-size (len data))\n\
             \x20     (if (< 0 cache-size)\n\
             \x20         (safe-vec-ref data (- cache-size 1))\n\
             \x20         0))))\n"
        ),
        annotated: None,
        modified: None,
        num_ops: 1,
    }
}

/// A filler (non-vector) definition, used to make generated libraries'
/// line counts match the paper's corpus statistics.
pub fn filler_def<R: Rng>(rng: &mut R, id: usize) -> String {
    match rng.gen_range(0..3u8) {
        0 => {
            let a = rng.gen_range(1..=9);
            let b = rng.gen_range(-9..=9);
            format!(
                "(: util{id} : [x : Int] [y : Int] -> Int)\n\
                 (define (util{id} x y)\n\
                 \x20 (+ (* {a} x) (- y {b})))\n"
            )
        }
        1 => format!(
            "(: clamp{id} : [x : Int] [lo : Int] [hi : Int] -> Int)\n\
             (define (clamp{id} x lo hi)\n\
             \x20 (cond [(< x lo) lo]\n\
             \x20       [(> x hi) hi]\n\
             \x20       [else x]))\n"
        ),
        _ => format!(
            "(: both{id} : [p : (Pairof Int Int)] -> Int)\n\
             (define (both{id} p)\n\
             \x20 (+ (fst p) (snd p)))\n"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtr_core::check::Checker;
    use rtr_lang::check_source;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// Every template must land in its designed class when run through the
    /// paper's staged methodology.
    #[test]
    fn templates_classify_as_designed() {
        let checker = Checker::default();
        let mut r = rng();
        for class in [
            Class::Auto,
            Class::Annotation,
            Class::Modification,
            Class::BeyondScope,
            Class::Unimplemented,
            Class::Unsafe,
        ] {
            for k in 0..12 {
                let site = build_site(&mut r, class, k);
                let plain_ok = check_source(&site.plain, &checker).is_ok();
                match class {
                    Class::Auto => assert!(
                        plain_ok,
                        "auto template {} failed:\n{}",
                        site.pattern, site.plain
                    ),
                    Class::Annotation => {
                        assert!(!plain_ok, "{} verified plain", site.pattern);
                        let ann = site.annotated.as_ref().expect("annotation variant");
                        assert!(
                            check_source(ann, &checker).is_ok(),
                            "annotated {} failed:\n{ann}",
                            site.pattern
                        );
                    }
                    Class::Modification => {
                        assert!(!plain_ok, "{} verified plain", site.pattern);
                        let m = site.modified.as_ref().expect("modified variant");
                        assert!(
                            check_source(m, &checker).is_ok(),
                            "modified {} failed:\n{m}",
                            site.pattern
                        );
                    }
                    Class::BeyondScope | Class::Unimplemented | Class::Unsafe => {
                        assert!(!plain_ok, "{} should not verify", site.pattern);
                        assert!(site.annotated.is_none() && site.modified.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn fillers_always_check() {
        let checker = Checker::default();
        let mut r = rng();
        for k in 0..20 {
            let src = filler_def(&mut r, k);
            assert!(
                check_source(&src, &checker).is_ok(),
                "filler failed:\n{src}"
            );
        }
    }
}
