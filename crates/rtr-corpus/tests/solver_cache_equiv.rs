//! The incremental theory-solving layer (fingerprint memoization,
//! trace-extended Fourier–Motzkin, the persistent bitvector session)
//! must classify corpus sites exactly like the one-shot reference
//! (`solver_cache: false`): canonicalization preserves the solved
//! constraint system up to variable renaming, so cached verdicts are the
//! verdicts the one-shot solvers would have produced. One flipped
//! verdict here would skew the regenerated Figure 9.
//!
//! This mirrors `memoization_equiv.rs`, which pins down the same
//! property one layer up (judgment memo tables).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_corpus::classify::{classify_library_jobs, classify_site};
use rtr_corpus::gen::generate;
use rtr_corpus::patterns::{build_site, Class};
use rtr_corpus::profiles::libraries;

#[test]
fn solver_cached_checker_classifies_sites_like_the_one_shot_reference() {
    let cached = Checker::default();
    let one_shot = Checker::with_config(CheckerConfig {
        solver_cache: false,
        ..CheckerConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0x50_1D_CA_FE);
    let classes = [
        Class::Auto,
        Class::Annotation,
        Class::Modification,
        Class::BeyondScope,
        Class::Unsafe,
    ];
    let mut id = 0usize;
    for &class in &classes {
        for _ in 0..3 {
            let site = build_site(&mut rng, class, id);
            id += 1;
            let fast = classify_site(&site, &cached);
            let slow = classify_site(&site, &one_shot);
            assert_eq!(
                fast, slow,
                "site {} (pattern {}, class {:?}) classified differently with solver caching",
                site.id, site.pattern, site.expected
            );
        }
    }
}

/// String-theory sites: regex-guarded modules — well-typed, ill-typed,
/// ground-literal, subtyping-by-language-inclusion and mixed-theory —
/// must produce identical verdicts and diagnostic codes with the
/// persistent regex session (`solver_cache: true` routes entailments
/// through warm DFA/product caches) and with the one-shot reference.
#[test]
fn string_theory_sites_agree_with_and_without_solver_cache() {
    let digits_fn = r#"
(: digits-only : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
(define (digits-only s) (string-length s))
"#;
    let sites: Vec<String> = vec![
        // Guarded call: verifies through the membership atom.
        format!(
            r#"{digits_fn}
(: parse-port : Str -> Int)
(define (parse-port s)
  (if (regexp-match? #rx"[0-9]+" s) (digits-only s) 0))"#
        ),
        // Unguarded call: must fail identically.
        format!(
            r#"{digits_fn}
(: broken : Str -> Int)
(define (broken s) (digits-only s))"#
        ),
        // Ground literals, one passing and one failing.
        format!("{digits_fn}(digits-only \"2016\")"),
        format!("{digits_fn}(digits-only \"pldi\")"),
        // Subtyping as language inclusion, both directions.
        r#"
(: any-digits : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
(define (any-digits s) 1)
(: use : [s : Str #:where (=~ s #rx"[0-9]{4}")] -> Int)
(define (use s) (any-digits s))"#
            .to_owned(),
        r#"
(: year-only : [s : Str #:where (=~ s #rx"[0-9]{4}")] -> Int)
(define (year-only s) 1)
(: use : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
(define (use s) (year-only s))"#
            .to_owned(),
        // Negated membership learned in the else branch.
        r#"
(: no-digits : [s : Str #:where (!~ s #rx"[0-9]+")] -> Int)
(define (no-digits s) 0)
(: classify : Str -> Int)
(define (classify s)
  (if (regexp-match? #rx"[0-9]+" s) 1 (no-digits s)))"#
            .to_owned(),
        // Union narrowing composed with the regex theory.
        format!(
            r#"{digits_fn}
(: handle : (U Str Int) -> Int)
(define (handle x)
  (if (string? x)
      (if (regexp-match? #rx"[0-9]+" x) (digits-only x) 0)
      x))"#
        ),
    ];
    let cached = Checker::default();
    let one_shot = Checker::with_config(CheckerConfig {
        solver_cache: false,
        ..CheckerConfig::default()
    });
    for (i, src) in sites.iter().enumerate() {
        let fast = rtr_lang::check_module_source(src, &cached);
        let slow = rtr_lang::check_module_source(src, &one_shot);
        let codes = |r: &rtr_lang::module::ModuleReport| {
            r.diagnostics
                .iter()
                .map(|d| format!("{:?}", d.code))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            codes(&fast),
            codes(&slow),
            "string-theory site {i} diverged with solver caching:\n{src}"
        );
    }
}

/// The full §5 study, both configurations, all 1085 operations.
#[test]
fn full_corpus_classification_identical_with_and_without_solver_cache() {
    let cached = Checker::default();
    let one_shot = Checker::with_config(CheckerConfig {
        solver_cache: false,
        ..CheckerConfig::default()
    });
    for profile in libraries() {
        let lib = generate(&profile, 2016);
        let fast = classify_library_jobs(&lib, &cached, 1);
        let slow = classify_library_jobs(&lib, &one_shot, 1);
        assert_eq!(
            format!("{fast:?}"),
            format!("{slow:?}"),
            "{}: tallies diverged",
            profile.name
        );
    }
}
