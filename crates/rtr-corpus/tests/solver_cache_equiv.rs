//! The incremental theory-solving layer (fingerprint memoization,
//! trace-extended Fourier–Motzkin, the persistent bitvector session)
//! must classify corpus sites exactly like the one-shot reference
//! (`solver_cache: false`): canonicalization preserves the solved
//! constraint system up to variable renaming, so cached verdicts are the
//! verdicts the one-shot solvers would have produced. One flipped
//! verdict here would skew the regenerated Figure 9.
//!
//! This mirrors `memoization_equiv.rs`, which pins down the same
//! property one layer up (judgment memo tables).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_corpus::classify::{classify_library_jobs, classify_site};
use rtr_corpus::gen::generate;
use rtr_corpus::patterns::{build_site, Class};
use rtr_corpus::profiles::libraries;

#[test]
fn solver_cached_checker_classifies_sites_like_the_one_shot_reference() {
    let cached = Checker::default();
    let one_shot = Checker::with_config(CheckerConfig {
        solver_cache: false,
        ..CheckerConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0x50_1D_CA_FE);
    let classes = [
        Class::Auto,
        Class::Annotation,
        Class::Modification,
        Class::BeyondScope,
        Class::Unsafe,
    ];
    let mut id = 0usize;
    for &class in &classes {
        for _ in 0..3 {
            let site = build_site(&mut rng, class, id);
            id += 1;
            let fast = classify_site(&site, &cached);
            let slow = classify_site(&site, &one_shot);
            assert_eq!(
                fast, slow,
                "site {} (pattern {}, class {:?}) classified differently with solver caching",
                site.id, site.pattern, site.expected
            );
        }
    }
}

/// The full §5 study, both configurations, all 1085 operations.
#[test]
fn full_corpus_classification_identical_with_and_without_solver_cache() {
    let cached = Checker::default();
    let one_shot = Checker::with_config(CheckerConfig {
        solver_cache: false,
        ..CheckerConfig::default()
    });
    for profile in libraries() {
        let lib = generate(&profile, 2016);
        let fast = classify_library_jobs(&lib, &cached, 1);
        let slow = classify_library_jobs(&lib, &one_shot, 1);
        assert_eq!(
            format!("{fast:?}"),
            format!("{slow:?}"),
            "{}: tallies diverged",
            profile.name
        );
    }
}
