//! The memoized/normalizing checker must classify corpus sites exactly
//! like the structural reference (`memoize: false`): interning-level union
//! flatten/dedup/sort and the generation-keyed memo tables are perf
//! machinery, not a semantics change. One flipped verdict here would skew
//! the regenerated Figure 9.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_corpus::classify::{classify_library, classify_site};
use rtr_corpus::gen::generate;
use rtr_corpus::patterns::{build_site, Class};
use rtr_corpus::profiles::libraries;
use rtr_corpus::report::{fig9_table, CaseStudy};

#[test]
fn memoized_checker_classifies_sites_like_the_structural_reference() {
    let memoized = Checker::default();
    let structural = Checker::with_config(CheckerConfig {
        memoize: false,
        ..CheckerConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    let classes = [
        Class::Auto,
        Class::Annotation,
        Class::Modification,
        Class::BeyondScope,
        Class::Unsafe,
    ];
    let mut id = 0usize;
    for &class in &classes {
        for _ in 0..3 {
            let site = build_site(&mut rng, class, id);
            id += 1;
            let fast = classify_site(&site, &memoized);
            let slow = classify_site(&site, &structural);
            assert_eq!(
                fast, slow,
                "site {} (pattern {}, class {:?}) classified differently",
                site.id, site.pattern, site.expected
            );
        }
    }
}

/// The rendered Figure 9 table — the §5 artifact itself — must be
/// byte-identical whether the checker runs id-native and memoized (the
/// default) or as the tree-walking structural reference. This is the
/// in-repo half of the refactor's acceptance gate (the other half is an
/// old-binary/new-binary diff of the `fig9` output).
#[test]
fn fig9_table_is_byte_identical_between_memoized_and_structural() {
    let seed = 0x0F19_2016;
    let libs: Vec<_> = libraries().iter().map(|p| generate(p, seed)).collect();
    let render = |checker: &Checker| {
        let tallies = libs.iter().map(|l| classify_library(l, checker)).collect();
        fig9_table(&CaseStudy {
            libs: libs.clone(),
            tallies,
            baseline: None,
        })
    };
    let fast = render(&Checker::default());
    let slow = render(&Checker::with_config(CheckerConfig {
        memoize: false,
        ..CheckerConfig::default()
    }));
    assert_eq!(fast, slow, "fig. 9 table diverged:\n{fast}\n---\n{slow}");
}
