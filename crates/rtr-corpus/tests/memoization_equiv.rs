//! The memoized/normalizing checker must classify corpus sites exactly
//! like the structural reference (`memoize: false`): interning-level union
//! flatten/dedup/sort and the generation-keyed memo tables are perf
//! machinery, not a semantics change. One flipped verdict here would skew
//! the regenerated Figure 9.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_corpus::classify::classify_site;
use rtr_corpus::patterns::{build_site, Class};

#[test]
fn memoized_checker_classifies_sites_like_the_structural_reference() {
    let memoized = Checker::default();
    let structural = Checker::with_config(CheckerConfig {
        memoize: false,
        ..CheckerConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    let classes = [
        Class::Auto,
        Class::Annotation,
        Class::Modification,
        Class::BeyondScope,
        Class::Unsafe,
    ];
    let mut id = 0usize;
    for &class in &classes {
        for _ in 0..3 {
            let site = build_site(&mut rng, class, id);
            id += 1;
            let fast = classify_site(&site, &memoized);
            let slow = classify_site(&site, &structural);
            assert_eq!(
                fast, slow,
                "site {} (pattern {}, class {:?}) classified differently",
                site.id, site.pattern, site.expected
            );
        }
    }
}
