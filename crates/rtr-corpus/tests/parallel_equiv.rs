//! Sharding the corpus classification across worker threads must not
//! change a single byte of the report: outcomes are folded in site
//! order and every solver/judgment cache the workers share is keyed on
//! thread-independent ids (generations, epochs, canonical fingerprints).

use rtr_core::check::Checker;
use rtr_corpus::classify::{classify_library, classify_library_jobs};
use rtr_corpus::gen::generate;
use rtr_corpus::profiles::libraries;
use rtr_corpus::report::{fig9_table, run_case_study_jobs, stats_table};

#[test]
fn parallel_classification_matches_serial() {
    // A slice of each library keeps the test quick while still crossing
    // shard boundaries (jobs > 1 even on single-core CI).
    let checker = Checker::default();
    for profile in libraries() {
        let lib = generate(&profile, 2016);
        let sample = rtr_corpus::gen::Library {
            profile: lib.profile.clone(),
            sites: lib.sites.iter().take(24).cloned().collect(),
            filler: Vec::new(),
        };
        let serial = classify_library(&sample, &checker);
        for jobs in [2, 3, 8] {
            let parallel = classify_library_jobs(&sample, &checker, jobs);
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "{}: tally diverged at jobs={jobs}",
                profile.name
            );
        }
    }
}

#[test]
fn parallel_report_is_byte_identical() {
    // Full-study comparison on the committed seed: the rendered tables
    // (the artifact a user would diff) must match byte for byte.
    let serial = run_case_study_jobs(2016, false, 1);
    let parallel = run_case_study_jobs(2016, false, 4);
    assert_eq!(fig9_table(&serial), fig9_table(&parallel));
    assert_eq!(stats_table(&serial), stats_table(&parallel));
}
