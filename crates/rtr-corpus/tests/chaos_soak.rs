//! Differential chaos soak over the synthetic corpora (`--features
//! chaos`): classifying §5 sites under a seeded fault schedule may only
//! move outcomes *down* the staged ladder (toward `Unverified`) — an
//! injected fault can starve a proof, never conjure one — and a chaos
//! run is deterministic, serial vs sharded.

#![cfg(feature = "chaos")]

use rtr_core::budget::ChaosConfig;
use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_corpus::classify::{classify_library, classify_library_jobs, classify_site, Outcome};
use rtr_corpus::gen::{generate, Library};
use rtr_corpus::profiles::libraries;

/// Position on the staged ladder: lower verifies earlier.
fn rank(o: Outcome) -> u8 {
    match o {
        Outcome::Auto => 0,
        Outcome::WithAnnotations => 1,
        Outcome::WithModifications => 2,
        Outcome::Unverified => 3,
    }
}

fn chaos_checker(seed: u64) -> Checker {
    let cfg = CheckerConfig {
        chaos: Some(ChaosConfig {
            seed,
            trip_per_mille: 10,
            panic_per_mille: 10,
            flush_per_mille: 10,
            solver_per_mille: 10,
        }),
        ..CheckerConfig::default()
    };
    Checker::with_config(cfg)
}

/// A quick cross-library sample, as in `parallel_equiv.rs`.
fn sample(profile_idx: usize) -> Library {
    let profile = &libraries()[profile_idx];
    let lib = generate(profile, 2016);
    Library {
        profile: lib.profile.clone(),
        sites: lib.sites.iter().take(24).cloned().collect(),
        filler: Vec::new(),
    }
}

#[test]
fn chaos_classification_only_degrades_outcomes() {
    for idx in 0..libraries().len() {
        let lib = sample(idx);
        let fault_free = Checker::default();
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let chaotic = chaos_checker(seed);
            for site in &lib.sites {
                let base = classify_site(site, &fault_free);
                let shaken = classify_site(site, &chaotic);
                assert!(
                    rank(shaken) >= rank(base),
                    "{} site {} (seed {seed}): fault injection promoted {base:?} to {shaken:?}",
                    lib.profile.name,
                    site.id
                );
            }
        }
    }
}

#[test]
fn chaos_soak_is_deterministic_serial_vs_sharded() {
    let lib = sample(0);
    let serial = classify_library(&lib, &chaos_checker(2016));
    for jobs in [2, 4] {
        // A fresh checker per run: shared warm caches are verdict-neutral
        // but the chaos schedule is budget-fork-local, so this compares
        // like with like.
        let parallel = classify_library_jobs(&lib, &chaos_checker(2016), jobs);
        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "chaos tally diverged at jobs={jobs}"
        );
    }
}
