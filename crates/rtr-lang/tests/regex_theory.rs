//! End-to-end tests for the regex theory — the extension §7 of the paper
//! anticipates ("theories of regular expressions"). The shape mirrors the
//! §2.1 vector story: a *checked* primitive (`regexp-match?`) plays the
//! role of the bounds test, and a refinement-typed function plays the role
//! of `safe-vec-ref`.

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_core::interp::Value;
use rtr_lang::module::{check_source, run_source, LangError};

fn rtr() -> Checker {
    Checker::default()
}

fn lambda_tr() -> Checker {
    Checker::with_config(CheckerConfig::lambda_tr())
}

/// The header shared by most tests: a function whose domain demands a
/// proof that the string is all digits.
const DIGITS_FN: &str = r#"
(: digits-only : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
(define (digits-only s) (string-length s))
"#;

#[test]
fn guarded_call_verifies() {
    // (regexp-match? #rx"[0-9]+" s) is the occurrence-typing test: its
    // then-proposition is the membership atom the domain demands.
    let src = format!(
        r#"{DIGITS_FN}
(: parse-port : Str -> Int)
(define (parse-port s)
  (if (regexp-match? #rx"[0-9]+" s)
      (digits-only s)
      0))
(parse-port "8080")"#
    );
    let v = run_source(&src, &rtr(), 100_000).expect("checks and runs");
    assert!(matches!(v, Value::Int(4)));
}

#[test]
fn unguarded_call_is_rejected() {
    let src = format!(
        r#"{DIGITS_FN}
(: broken : Str -> Int)
(define (broken s) (digits-only s))"#
    );
    match check_source(&src, &rtr()) {
        Err(LangError::Type(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("argument"), "unexpected message: {msg}");
        }
        other => panic!("expected a type error, got {other:?}"),
    }
}

#[test]
fn string_literals_are_ground() {
    // Literal arguments are decided by running the matcher at type-check
    // time — the theory-RE analogue of constant folding in theory LI.
    let ok = format!("{DIGITS_FN}(digits-only \"2016\")");
    assert!(check_source(&ok, &rtr()).is_ok());
    let bad = format!("{DIGITS_FN}(digits-only \"pldi\")");
    assert!(matches!(
        check_source(&bad, &rtr()),
        Err(LangError::Type(_))
    ));
}

#[test]
fn literals_flow_through_let_aliases() {
    // Representative objects (§4.1) resolve s to the literal, so the
    // membership atom is ground even through the binding.
    let src = format!(
        r#"{DIGITS_FN}
(let ([s "413"]) (digits-only s))"#
    );
    assert!(check_source(&src, &rtr()).is_ok());
}

#[test]
fn else_branch_learns_the_negation() {
    let src = r#"
(: no-digits : [s : Str #:where (!~ s #rx"[0-9]+")] -> Int)
(define (no-digits s) 0)
(: classify : Str -> Int)
(define (classify s)
  (if (regexp-match? #rx"[0-9]+" s)
      1
      (no-digits s)))
(classify "abc")"#;
    let v = run_source(src, &rtr(), 100_000).expect("checks and runs");
    assert!(matches!(v, Value::Int(0)));
}

#[test]
fn subtyping_is_language_inclusion() {
    // {s:Str | s ∈ L([0-9]{4})} <: {s:Str | s ∈ L([0-9]+)} — decided by
    // the automata solver inside S-Refine1/2.
    let src = r#"
(: any-digits : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
(define (any-digits s) 1)
(: use : [s : Str #:where (=~ s #rx"[0-9]{4}")] -> Int)
(define (use s) (any-digits s))"#;
    assert!(check_source(src, &rtr()).is_ok());
    // And the reverse inclusion fails: [0-9]+ ⊄ [0-9]{4}.
    let bad = r#"
(: year-only : [s : Str #:where (=~ s #rx"[0-9]{4}")] -> Int)
(define (year-only s) 1)
(: use : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
(define (use s) (year-only s))"#;
    assert!(matches!(check_source(bad, &rtr()), Err(LangError::Type(_))));
}

#[test]
fn occurrence_typing_composes_with_the_theory() {
    // A (U Str Int) input: string? narrows the union, then the regex test
    // refines the narrowed string — both facts in one environment.
    let src = format!(
        r#"{DIGITS_FN}
(: handle : (U Str Int) -> Int)
(define (handle x)
  (if (string? x)
      (if (regexp-match? #rx"[0-9]+" x)
          (digits-only x)
          0)
      x))
(+ (handle "99") (handle 1))"#
    );
    let v = run_source(&src, &rtr(), 100_000).expect("checks and runs");
    assert!(matches!(v, Value::Int(3)));
}

#[test]
fn string_length_feeds_the_linear_theory() {
    // string-length emits the `len` field object, so the guard's linear
    // fact proves the refined domain — two theories about one variable.
    let src = r#"
(: nonempty : [s : Str #:where (<= 1 (string-length s))] -> Int)
(define (nonempty s) (string-length s))
(: f : Str -> Int)
(define (f s)
  (if (< 0 (string-length s))
      (nonempty s)
      0))
(f "hi")"#;
    let v = run_source(src, &rtr(), 100_000).expect("checks and runs");
    assert!(matches!(v, Value::Int(2)));
}

#[test]
fn lambda_tr_baseline_rejects_the_guarded_program() {
    // Without the theory the guard teaches nothing — the same shape as
    // the λTR baseline failing to verify guarded vector accesses.
    let src = format!(
        r#"{DIGITS_FN}
(: parse-port : Str -> Int)
(define (parse-port s)
  (if (regexp-match? #rx"[0-9]+" s)
      (digits-only s)
      0))"#
    );
    assert!(check_source(&src, &rtr()).is_ok());
    assert!(matches!(
        check_source(&src, &lambda_tr()),
        Err(LangError::Type(_))
    ));
}

#[test]
fn runtime_matcher_agrees_with_the_static_theory() {
    let src = r#"
(regexp-match? #rx"a(b|c)*d" "abccbd")"#;
    assert!(matches!(
        run_source(src, &rtr(), 100_000),
        Ok(Value::Bool(true))
    ));
    let src = r#"
(regexp-match? #rx"a(b|c)*d" "abce")"#;
    assert!(matches!(
        run_source(src, &rtr(), 100_000),
        Ok(Value::Bool(false))
    ));
}

#[test]
fn bad_regex_literals_are_positioned_syntax_errors() {
    let src = r#"(regexp-match? #rx"[a-" "x")"#;
    match check_source(src, &rtr()) {
        Err(LangError::Syntax(e)) => {
            assert!(
                e.message.contains("regex"),
                "unexpected message: {}",
                e.message
            );
        }
        other => panic!("expected a syntax error, got {other:?}"),
    }
}

#[test]
fn string_equality_and_predicates_run() {
    let src = r#"
(if (string=? "a" "a")
    (if (string? "x") 1 2)
    3)"#;
    assert!(matches!(
        run_source(src, &rtr(), 100_000),
        Ok(Value::Int(1))
    ));
}

#[test]
fn mutable_strings_learn_nothing() {
    // §4.2 discipline carries over: a mutated string variable gets no
    // symbolic object, so the regex test cannot justify the call.
    let src = format!(
        r#"{DIGITS_FN}
(: f : Str -> Int)
(define (f init)
  (let ([s : Str init])
    (begin
      (set! s "oops")
      (if (regexp-match? #rx"[0-9]+" s)
          (digits-only s)
          0))))"#
    );
    assert!(matches!(
        check_source(&src, &rtr()),
        Err(LangError::Type(_))
    ));
}
