//! Fuzz the reader/elaborator: arbitrary input must produce errors, never
//! panics, and valid input must round-trip.

use proptest::prelude::*;

use rtr_lang::sexp::{read_all, read_one, Sexp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes: the reader returns Ok or Err but never panics.
    #[test]
    fn reader_total_on_arbitrary_input(src in "\\PC*") {
        let _ = read_all(&src);
    }

    /// Arbitrary parenthesis soup: likewise total.
    #[test]
    fn reader_total_on_paren_soup(src in "[()\\[\\] a-z0-9#:;\"\\\\.-]*") {
        let _ = read_all(&src);
    }

    /// Elaboration is total too: whatever the reader accepts, the
    /// elaborator must accept or reject without panicking.
    #[test]
    fn elaborator_total(src in "[()\\[\\] a-z0-9#:<>=+*-]*") {
        if let Ok(forms) = read_all(&src) {
            let mut elab = rtr_lang::elab::Elaborator::new();
            for f in &forms {
                let _ = elab.expr(f);
                let _ = rtr_lang::elab::Elaborator::new().ty(f);
                let _ = rtr_lang::elab::Elaborator::new().prop(f);
            }
            let _ = rtr_lang::elaborate_module(&src);
        }
    }
}

/// Printed s-expressions re-read to the same datum (a structured
/// round-trip, complementing the fuzz above).
#[test]
fn print_read_round_trip() {
    let sources = [
        "(define (f [x : Int]) (+ x 1))",
        "(let ([a 1] [b #t]) (if b a 0))",
        "(vec #x1b #xff)",
        "(: g : [v : (Vecof Int)] -> [z : Int #:where (<= 0 z (len v))])",
        "[x : (U Int Bool (Pairof Int Int))]",
    ];
    for src in sources {
        let d1 = read_one(src).unwrap();
        let d2 = read_one(&d1.to_string()).unwrap();
        assert_eq!(
            strip_pos(&d1),
            strip_pos(&d2),
            "round trip failed for {src}"
        );
    }
}

/// Structural comparison ignoring positions.
fn strip_pos(s: &Sexp) -> String {
    s.to_string()
}
