//! The paper's programs, written in the surface syntax and pushed through
//! the full pipeline: read → expand → elaborate → check → run.

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_core::interp::Value;
use rtr_lang::{check_source, run_source, run_source_unchecked, LangError};

fn rtr() -> Checker {
    Checker::default()
}

fn tr() -> Checker {
    Checker::with_config(CheckerConfig::lambda_tr())
}

/// Fig. 1, verbatim modulo ASCII operators.
#[test]
fn fig1_max() {
    let src = r#"
        (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
        (define (max x y) (if (> x y) x y))
        (max 3 7)
    "#;
    assert!(check_source(src, &rtr()).is_ok());
    assert!(
        check_source(src, &tr()).is_err(),
        "λTR cannot prove the range"
    );
    assert!(matches!(run_source(src, &rtr(), 10_000), Ok(Value::Int(7))));
}

/// §2's least-significant-bit with an (U Int (Pairof Int Int)) input.
#[test]
fn section2_least_significant_bit() {
    let src = r#"
        (: least-significant-bit : [n : (U Int (Pairof Int Int))] -> Int)
        (define (least-significant-bit n)
          (if (int? n)
              (if (even? n) 0 1)
              (fst n)))
        (+ (least-significant-bit 7) (least-significant-bit (cons 1 0)))
    "#;
    assert!(check_source(src, &rtr()).is_ok());
    assert!(
        check_source(src, &tr()).is_ok(),
        "pure occurrence typing suffices here"
    );
    assert!(matches!(run_source(src, &rtr(), 10_000), Ok(Value::Int(2))));
}

/// §2.1's vec-ref with its runtime guard, defined in terms of the unsafe
/// primitive (the safe-vec-ref spec is the primitive's own type).
#[test]
fn section21_guarded_vec_ref() {
    let src = r#"
        (: my-vec-ref : [v : (Vecof Int)] [i : Int] -> Int)
        (define (my-vec-ref v i)
          (if (<= 0 i)
              (if (< i (len v))
                  (safe-vec-ref v i)
                  (error "invalid vector index!"))
              (error "invalid vector index!")))
        (my-vec-ref (vec 10 20 30) 2)
    "#;
    assert!(check_source(src, &rtr()).is_ok());
    assert!(matches!(
        run_source(src, &rtr(), 10_000),
        Ok(Value::Int(30))
    ));
    // The λTR baseline rejects the unsafe call even though it is guarded.
    assert!(check_source(src, &tr()).is_err());
}

/// §2.1's safe-dot-prod: *rejected* without knowledge that the lengths
/// match — reproducing the paper's error message scenario.
#[test]
fn section21_safe_dot_prod_rejected() {
    let src = r#"
        (: safe-dot-prod : [A : (Vecof Int)] [B : (Vecof Int)] -> Int)
        (define (safe-dot-prod A B)
          (for/sum ([i (in-range (len A))])
            (* (safe-vec-ref A i) (safe-vec-ref B i))))
    "#;
    match check_source(src, &rtr()) {
        Err(LangError::Type(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("argument 2"), "should flag the B index: {msg}");
        }
        other => panic!("expected rejection of the B access, got {other:?}"),
    }
}

/// §2.1's dot-prod: the `unless` guard makes the same loop verify, and
/// the program runs.
#[test]
fn section21_dot_prod_with_guard() {
    let src = r#"
        (: dot-prod : [A : (Vecof Int)] [B : (Vecof Int)] -> Int)
        (define (dot-prod A B)
          (begin
            (unless (= (len A) (len B))
              (error "invalid vector lengths!"))
            (for/sum ([i (in-range (len A))])
              (* (safe-vec-ref A i) (safe-vec-ref B i)))))
        (dot-prod (vec 1 2 3) (vec 4 5 6))
    "#;
    assert!(
        check_source(src, &rtr()).is_ok(),
        "guarded dot-prod must verify"
    );
    assert!(matches!(
        run_source(src, &rtr(), 100_000),
        Ok(Value::Int(32))
    ));
    // And the guard actually fires at runtime on mismatched lengths.
    let bad = src.replace("(vec 4 5 6)", "(vec 4 5)");
    match run_source(&bad, &rtr(), 100_000) {
        Err(LangError::Eval(rtr_core::interp::EvalError::UserError(m))) => {
            assert!(m.contains("invalid vector lengths"));
        }
        other => panic!("expected the guard to fire, got {other:?}"),
    }
}

/// §4.4: reverse iteration defeats the Nat heuristic, as in the paper.
#[test]
fn section44_reverse_iteration_fails() {
    let src = r#"
        (: rev-sum : [A : (Vecof Int)] -> Int)
        (define (rev-sum A)
          (for/sum ([i (in-range (len A) 0 -1)])
            (safe-vec-ref A i)))
    "#;
    assert!(
        check_source(src, &rtr()).is_err(),
        "the Nat heuristic must fail on reverse iteration (§4.4)"
    );
}

/// §2.2's xtime, in the paper's AND/XOR spelling, with Byte sugar.
#[test]
fn section22_xtime() {
    let src = r#"
        (: xtime : [num : Byte] -> Byte)
        (define (xtime num)
          (let ([n (AND (bv* #x02 num) #xff)])
            (cond
              [(bv= #x00 (AND num #x80)) n]
              [else (XOR n #x1b)])))
        (xtime #x57)
    "#;
    assert!(
        check_source(src, &rtr()).is_ok(),
        "xtime must verify with the BV theory"
    );
    // 0x57·x = 0xae (no reduction: high bit of 0x57 is 0).
    assert!(matches!(
        run_source(src, &rtr(), 10_000),
        Ok(Value::Bv(0xae))
    ));
    // With the high bit set, the reduction polynomial applies:
    // xtime(0x80) = (0x00) ⊕ 0x1b = 0x1b.
    let src2 = src.replace("(xtime #x57)", "(xtime #x80)");
    assert!(matches!(
        run_source(&src2, &rtr(), 10_000),
        Ok(Value::Bv(0x1b))
    ));
}

/// §5.1's annotated recursive loop over a vector, surface form.
#[test]
fn section51_annotated_loop() {
    let src = r#"
        (: prod : [ds : (Vecof Int)] -> Int)
        (define (prod ds)
          (let loop : Int ([i : (Refine [i : Int] (<= 0 i (len ds))) (len ds)]
                           [res : Int 1])
            (cond
              [(zero? i) res]
              [else (loop (- i 1) (* res (safe-vec-ref ds (- i 1))))])))
        (prod (vec 2 3 4))
    "#;
    assert!(
        check_source(src, &rtr()).is_ok(),
        "annotated loop must verify"
    );
    assert!(matches!(
        run_source(src, &rtr(), 100_000),
        Ok(Value::Int(24))
    ));
}

/// §5.1's vec-swap! with the two added guards.
#[test]
fn section51_vec_swap() {
    let src = r#"
        (: vec-swap! : [vs : (Vecof Int)] [i : Int] [j : Int] -> Unit)
        (define (vec-swap! vs i j)
          (unless (= i j)
            (cond
              [(and (< -1 i (len vs))
                    (< -1 j (len vs)))
               (let ([i-val (safe-vec-ref vs i)]
                     [j-val (safe-vec-ref vs j)])
                 (begin
                   (safe-vec-set! vs i j-val)
                   (safe-vec-set! vs j i-val)))]
              [else (error "bad index(s)!")])))
        (define v (vec 1 2 3))
        (begin (vec-swap! v 0 2) (vec-ref v 0))
    "#;
    assert!(
        check_source(src, &rtr()).is_ok(),
        "guarded swap must verify"
    );
    assert!(matches!(
        run_source(src, &rtr(), 100_000),
        Ok(Value::Int(3))
    ));
}

/// §4.2: the mutable cache-size exploit. The checker rejects the
/// safe-access version; the unchecked unsafe version crashes at runtime —
/// the bug the paper found in the math library.
#[test]
fn section42_mutable_cache_exploit() {
    let checked = r#"
        (define (f [data : (Vecof Int)])
          (let ([cache-size 0])
            (begin
              (set! cache-size (len data))
              (if (< 0 cache-size)
                  (safe-vec-ref data (- cache-size 1))
                  0))))
        (f (vec 1 2 3))
    "#;
    assert!(
        check_source(checked, &rtr()).is_err(),
        "tests on a mutable variable must not verify accesses (§4.2)"
    );

    // Simulating the concurrent shrink with an in-line mutation: the raw
    // access goes out of bounds — undefined behaviour the type system
    // (correctly) refused to bless.
    let exploit = r#"
        (define (g [data : (Vecof Int)] [small : (Vecof Int)])
          (let ([cache data])
            (let ([n (len data)])
              (begin
                (set! cache small)
                (if (< 0 n)
                    (unsafe-vec-ref cache (- n 1))
                    0)))))
        (g (vec 1 2 3 4 5) (vec 9))
    "#;
    match run_source_unchecked(exploit, 100_000) {
        Err(LangError::Eval(rtr_core::interp::EvalError::Stuck(m))) => {
            assert!(m.contains("out-of-bounds"), "unexpected stuck reason: {m}");
        }
        other => panic!("the exploit should crash the raw access, got {other:?}"),
    }
}

/// Polymorphic vector reads through local type inference (§4.3).
#[test]
fn section43_polymorphic_instantiation() {
    let src = r#"
        (define (second-of [v : (Vecof Bool)])
          (if (< 1 (len v)) (safe-vec-ref v 1) #f))
        (second-of (vec #t #f #t))
    "#;
    assert!(check_source(src, &rtr()).is_ok());
    assert!(matches!(
        run_source(src, &rtr(), 10_000),
        Ok(Value::Bool(false))
    ));
}

/// The checked vec-ref needs no proof but fails at runtime when out of
/// bounds (user error, not stuck): the legacy behaviour RTR coexists with.
#[test]
fn checked_access_is_a_user_error() {
    let src = "(vec-ref (vec 1 2) 5)";
    assert!(check_source(src, &rtr()).is_ok());
    match run_source(src, &rtr(), 1_000) {
        Err(LangError::Eval(rtr_core::interp::EvalError::UserError(_))) => {}
        other => panic!("expected a checked bounds error, got {other:?}"),
    }
}

/// Racket's unnamed `let` is parallel: right-hand sides see the *outer*
/// bindings, not each other. `let*` is sequential.
#[test]
fn let_is_parallel_let_star_is_sequential() {
    let parallel = r#"
        (define x 1)
        (let ([x 2] [y x]) y)
    "#;
    match run_source(parallel, &rtr(), 10_000) {
        Ok(Value::Int(1)) => {}
        other => panic!("parallel let must see the outer x: {other:?}"),
    }
    let sequential = r#"
        (define x 1)
        (let* ([x 2] [y x]) y)
    "#;
    match run_source(sequential, &rtr(), 10_000) {
        Ok(Value::Int(2)) => {}
        other => panic!("let* must see the inner x: {other:?}"),
    }
}

/// `or` returns the first truthy *value* (not a boolean coercion).
#[test]
fn or_returns_the_witness_value() {
    match run_source("(or #f 5)", &rtr(), 1_000) {
        Ok(Value::Int(5)) => {}
        other => panic!("(or #f 5) must be 5: {other:?}"),
    }
    match run_source("(and 1 2)", &rtr(), 1_000) {
        Ok(Value::Int(2)) => {}
        other => panic!("(and 1 2) must be 2: {other:?}"),
    }
}
