//! S-expression reader: the concrete syntax of RTR programs.
//!
//! A small, span-tracking reader for the Racket-like surface syntax
//! used throughout the paper: parenthesized or bracketed lists, symbols,
//! integers, `#t`/`#f`, hexadecimal bitvector literals (`#x1b`), strings,
//! line comments (`;`), and the keywords (`#:where`) the annotation
//! syntax needs. Every datum records the full [`Span`] it occupies, and
//! the spans survive elaboration into [`rtr_core::diag`] diagnostics.

use std::fmt;

pub use rtr_core::diag::Span;

/// A source position (1-based line and column) — the core
/// [`rtr_core::diag::Loc`] under its traditional reader name.
pub type Pos = rtr_core::diag::Loc;

/// A parsed s-expression datum.
#[derive(Clone, PartialEq, Debug)]
pub enum Sexp {
    /// A symbol (identifier or operator).
    Symbol(String, Span),
    /// An integer literal.
    Int(i64, Span),
    /// A boolean literal `#t` / `#f`.
    Bool(bool, Span),
    /// A bitvector literal `#xNN`.
    BvHex(u64, Span),
    /// A keyword such as `#:where`.
    Keyword(String, Span),
    /// A string literal.
    Str(String, Span),
    /// A regex literal `#rx"…"` (raw pattern text; validated during
    /// elaboration).
    Regex(String, Span),
    /// A parenthesized (or bracketed) list.
    List(Vec<Sexp>, Span),
}

impl Sexp {
    /// The full source region of the datum.
    pub fn span(&self) -> Span {
        match self {
            Sexp::Symbol(_, s)
            | Sexp::Int(_, s)
            | Sexp::Bool(_, s)
            | Sexp::BvHex(_, s)
            | Sexp::Keyword(_, s)
            | Sexp::Str(_, s)
            | Sexp::Regex(_, s)
            | Sexp::List(_, s) => *s,
        }
    }

    /// The source position where the datum starts.
    pub fn pos(&self) -> Pos {
        self.span().start
    }

    /// The symbol's name, if this is a symbol.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Sexp::Symbol(s, _) => Some(s),
            _ => None,
        }
    }

    /// The list's elements, if this is a list.
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(items, _) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Symbol(s, _) => write!(f, "{s}"),
            Sexp::Int(n, _) => write!(f, "{n}"),
            Sexp::Bool(true, _) => write!(f, "#t"),
            Sexp::Bool(false, _) => write!(f, "#f"),
            Sexp::BvHex(v, _) => write!(f, "#x{v:02x}"),
            Sexp::Keyword(k, _) => write!(f, "#:{k}"),
            Sexp::Str(s, _) => write!(f, "{s:?}"),
            Sexp::Regex(r, _) => write!(f, "#rx\"{r}\""),
            Sexp::List(items, _) => {
                write!(f, "(")?;
                for (i, x) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A reader error with position information.
#[derive(Clone, PartialEq, Debug)]
pub struct ReadError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "read error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ReadError {}

struct Reader<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pos: Pos,
}

impl<'a> Reader<'a> {
    fn new(src: &'a str) -> Reader<'a> {
        Reader {
            chars: src.chars().peekable(),
            pos: Pos { line: 1, col: 1 },
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn error(&self, message: impl Into<String>) -> ReadError {
        ReadError {
            message: message.into(),
            pos: self.pos,
        }
    }

    /// The region from `start` to the reader's current position (just
    /// past the last consumed character of the datum).
    fn span(&self, start: Pos) -> Span {
        Span::new(start, self.pos)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some(';') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn read_all(&mut self) -> Result<Vec<Sexp>, ReadError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek().is_none() {
                return Ok(out);
            }
            out.push(self.read_datum()?);
        }
    }

    fn read_datum(&mut self) -> Result<Sexp, ReadError> {
        self.skip_trivia();
        let pos = self.pos;
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some('(') | Some('[') => {
                let open = self.bump().expect("peeked");
                let close = if open == '(' { ')' } else { ']' };
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    match self.peek() {
                        None => {
                            return Err(self.error(format!("missing `{close}`")));
                        }
                        Some(c) if c == close => {
                            self.bump();
                            return Ok(Sexp::List(items, self.span(pos)));
                        }
                        Some(')') | Some(']') => {
                            return Err(
                                self.error(format!("mismatched delimiter, wanted `{close}`"))
                            );
                        }
                        _ => items.push(self.read_datum()?),
                    }
                }
            }
            Some(')') | Some(']') => Err(self.error("unexpected closing delimiter")),
            Some('"') => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.error("unterminated string")),
                        Some('"') => return Ok(Sexp::Str(s, self.span(pos))),
                        Some('\\') => match self.bump() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(c @ ('"' | '\\')) => s.push(c),
                            _ => return Err(self.error("bad string escape")),
                        },
                        Some(c) => s.push(c),
                    }
                }
            }
            Some('#') => {
                self.bump();
                match self.peek() {
                    Some('t') => {
                        self.bump();
                        Ok(Sexp::Bool(true, self.span(pos)))
                    }
                    Some('f') => {
                        self.bump();
                        Ok(Sexp::Bool(false, self.span(pos)))
                    }
                    Some('x') => {
                        self.bump();
                        let mut digits = String::new();
                        while let Some(c) = self.peek() {
                            if c.is_ascii_hexdigit() {
                                digits.push(c);
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        if digits.is_empty() {
                            return Err(self.error("`#x` needs hex digits"));
                        }
                        u64::from_str_radix(&digits, 16)
                            .map(|v| Sexp::BvHex(v, self.span(pos)))
                            .map_err(|_| self.error("hex literal out of range"))
                    }
                    Some(':') => {
                        self.bump();
                        let word = self.read_word();
                        if word.is_empty() {
                            return Err(self.error("`#:` needs a keyword name"));
                        }
                        Ok(Sexp::Keyword(word, self.span(pos)))
                    }
                    Some('r') => {
                        self.bump();
                        if self.bump() != Some('x') {
                            return Err(self.error("expected `#rx\"…\"`"));
                        }
                        if self.bump() != Some('"') {
                            return Err(self.error("`#rx` needs a quoted pattern"));
                        }
                        // The pattern is read raw: `\` escapes stay intact
                        // for the regex parser; only `\"` is special so
                        // quotes can appear in patterns.
                        let mut pat = String::new();
                        loop {
                            match self.bump() {
                                None => return Err(self.error("unterminated regex literal")),
                                Some('"') => return Ok(Sexp::Regex(pat, self.span(pos))),
                                Some('\\') => match self.bump() {
                                    Some('"') => pat.push('"'),
                                    Some(c) => {
                                        pat.push('\\');
                                        pat.push(c);
                                    }
                                    None => return Err(self.error("unterminated regex literal")),
                                },
                                Some(c) => pat.push(c),
                            }
                        }
                    }
                    _ => Err(self.error("unknown `#` syntax")),
                }
            }
            Some(_) => {
                let word = self.read_word();
                if word.is_empty() {
                    return Err(self.error("unreadable character"));
                }
                // Integers (with optional sign).
                if let Ok(n) = word.parse::<i64>() {
                    // Bare `-`/`+` are symbols, parse::<i64> rejects them.
                    return Ok(Sexp::Int(n, self.span(pos)));
                }
                Ok(Sexp::Symbol(word, self.span(pos)))
            }
        }
    }

    fn read_word(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_whitespace() || matches!(c, '(' | ')' | '[' | ']' | '"' | ';') {
                break;
            }
            s.push(c);
            self.bump();
        }
        s
    }
}

/// Reads every datum in `src`.
///
/// # Errors
///
/// Returns a [`ReadError`] with position information on malformed input.
///
/// # Examples
///
/// ```
/// use rtr_lang::sexp::read_all;
///
/// let data = read_all("(+ 1 2) ; comment\n#t").unwrap();
/// assert_eq!(data.len(), 2);
/// ```
pub fn read_all(src: &str) -> Result<Vec<Sexp>, ReadError> {
    Reader::new(src).read_all()
}

/// Reads every datum in `src`, reporting positions as if `src` started
/// at `start` in some larger source. Used by the incremental module
/// pipeline to re-elaborate a single changed form *slice* with spans
/// that stay absolute in the full file — re-reading only the changed
/// text, not the whole module.
///
/// # Errors
///
/// Returns a [`ReadError`] (with absolute position) on malformed input.
///
/// # Examples
///
/// ```
/// use rtr_lang::sexp::{read_all_from, Pos};
///
/// // The slice "(a b)" starts at line 3, column 5 of its file.
/// let data = read_all_from("(a b)", Pos { line: 3, col: 5 }).unwrap();
/// assert_eq!(data[0].pos(), Pos { line: 3, col: 5 });
/// ```
pub fn read_all_from(src: &str, start: Pos) -> Result<Vec<Sexp>, ReadError> {
    let mut r = Reader::new(src);
    r.pos = start;
    r.read_all()
}

/// Reads exactly one datum.
///
/// # Errors
///
/// Fails on malformed input or trailing data.
pub fn read_one(src: &str) -> Result<Sexp, ReadError> {
    let mut r = Reader::new(src);
    let datum = r.read_datum()?;
    r.skip_trivia();
    if r.peek().is_some() {
        return Err(r.error("trailing data after datum"));
    }
    Ok(datum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms() {
        assert!(matches!(read_one("42"), Ok(Sexp::Int(42, _))));
        assert!(matches!(read_one("-7"), Ok(Sexp::Int(-7, _))));
        assert!(matches!(read_one("#t"), Ok(Sexp::Bool(true, _))));
        assert!(matches!(read_one("#f"), Ok(Sexp::Bool(false, _))));
        assert!(matches!(read_one("#x1b"), Ok(Sexp::BvHex(0x1b, _))));
        assert!(matches!(read_one("#:where"), Ok(Sexp::Keyword(ref k, _)) if k == "where"));
        assert!(matches!(read_one("vec-ref"), Ok(Sexp::Symbol(ref s, _)) if s == "vec-ref"));
        assert!(matches!(read_one("-"), Ok(Sexp::Symbol(ref s, _)) if s == "-"));
        assert!(matches!(read_one("\"hi\\n\""), Ok(Sexp::Str(ref s, _)) if s == "hi\n"));
    }

    #[test]
    fn lists_and_brackets() {
        let s = read_one("(define (max [x : Int]) x)").unwrap();
        let items = s.as_list().unwrap();
        assert_eq!(items[0].as_symbol(), Some("define"));
        let inner = items[1].as_list().unwrap();
        assert_eq!(inner[1].as_list().unwrap().len(), 3);
    }

    #[test]
    fn comments_and_positions() {
        let data = read_all("; header\n(a\n b)").unwrap();
        assert_eq!(data.len(), 1);
        let items = data[0].as_list().unwrap();
        assert_eq!(items[0].pos(), Pos { line: 2, col: 2 });
        assert_eq!(items[1].pos(), Pos { line: 3, col: 2 });
    }

    #[test]
    fn errors_are_positioned() {
        let err = read_all("(a b").unwrap_err();
        assert!(err.message.contains(')'));
        let err = read_all("(a]").unwrap_err();
        assert!(err.message.contains("mismatched"));
        assert!(read_all("\"abc").is_err());
        assert!(read_all("#x").is_err());
        assert!(read_all(")").is_err());
    }

    #[test]
    fn display_round_trips() {
        let src = "(let ([x 1]) (if (<= x 2) #t #f))";
        let s = read_one(src).unwrap();
        let printed = s.to_string();
        let again = read_one(&printed).unwrap();
        assert_eq!(s, again);
    }
}
