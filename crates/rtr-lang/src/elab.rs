//! Elaboration: surface s-expressions → λ_RTR core syntax.
//!
//! Covers the paper's annotation syntax — named dependent domains
//! `[x : Int]`, refined ranges `[z : Int #:where ψ]`, `Refine`, `All` — and
//! the derived expression forms (`cond`, `and`/`or`, `when`/`unless`,
//! named `let`, `begin`) that Typed Racket programs use. `begin` and
//! friends elaborate to `let`-chains so occurrence information flows
//! through statement sequences (this is how `(unless (= (len A) (len B))
//! (error …))` guards the accesses that follow it, §2.1).

use std::collections::HashSet;

use rtr_core::diag::{Diagnostic, NodeId, SpanTable};
use rtr_core::syntax::{BvCmp, Expr, LinCmp, Obj, Prop, Symbol, Ty, TyResult};

use crate::base_env::{is_reserved, lookup_prim};
use crate::expand;
use crate::sexp::{Sexp, Span};

/// An elaboration error with its source region.
#[derive(Clone, PartialEq, Debug)]
pub struct ElabError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl ElabError {
    /// The error as a located `E0102` diagnostic.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::syntax_error(format!("syntax error: {}", self.message), self.span)
    }
}

impl std::fmt::Display for ElabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "syntax error at {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for ElabError {}

pub(crate) fn err<T>(span: impl Into<Span>, message: impl Into<String>) -> Result<T, ElabError> {
    Err(ElabError {
        message: message.into(),
        span: span.into(),
    })
}

/// The elaborator. Tracks bound type variables (from `All`) so they
/// elaborate to [`Ty::TVar`]s, and records the span of every expression
/// it produces in a [`SpanTable`] (wrapping the core expression in
/// [`Expr::Spanned`]), including synthesized-from provenance for the
/// code macro expansion fabricates.
#[derive(Clone, Debug, Default)]
pub struct Elaborator {
    tvars: HashSet<Symbol>,
    spans: SpanTable,
    /// The surface node currently being elaborated — the provenance
    /// target for synthesized glue.
    current: Option<NodeId>,
}

impl Elaborator {
    /// A fresh elaborator with no bound type variables.
    pub fn new() -> Elaborator {
        Elaborator::default()
    }

    /// The span table accumulated so far, consuming the elaborator.
    pub fn into_spans(self) -> SpanTable {
        self.spans
    }

    /// Records the span of a top-level form (a `define` or signature)
    /// without wrapping an expression — module elaboration anchors
    /// item-level diagnostics to these nodes.
    pub(crate) fn form_node(&mut self, span: Span) -> NodeId {
        self.spans.insert(span)
    }

    /// Wraps macro-synthesized glue with a node whose provenance is the
    /// surface form currently being expanded. No-op outside a form.
    pub(crate) fn tag_synthesized(&mut self, e: Expr) -> Expr {
        match self.current {
            Some(from) => Expr::spanned(self.spans.insert_synthesized(from), e),
            None => e,
        }
    }

    // --- types ---------------------------------------------------------------

    /// Elaborates a type. (Types are not expressions: they carry no span
    /// nodes of their own; diagnostics about them point at the
    /// expression or definition that used them.)
    pub fn ty(&mut self, s: &Sexp) -> Result<Ty, ElabError> {
        match s {
            Sexp::Symbol(name, pos) => self.base_ty(name, *pos),
            Sexp::List(items, pos) => {
                // Infix arrow: ([x : Int] [y : Int] -> R).
                if let Some(k) = items
                    .iter()
                    .position(|i| i.as_symbol() == Some("->"))
                    .filter(|&k| k > 0)
                {
                    return self.arrow_ty(&items[..k], &items[k + 1..], *pos);
                }
                let head = items.first().and_then(Sexp::as_symbol).unwrap_or("");
                match head {
                    "->" => {
                        self.arrow_ty(&items[1..items.len() - 1], &items[items.len() - 1..], *pos)
                    }
                    "Vecof" | "Vectorof" => {
                        if items.len() != 2 {
                            return err(*pos, "Vecof takes one type");
                        }
                        Ok(Ty::vec(self.ty(&items[1])?))
                    }
                    "Pairof" | "Pair" => {
                        if items.len() != 3 {
                            return err(*pos, "Pairof takes two types");
                        }
                        Ok(Ty::pair(self.ty(&items[1])?, self.ty(&items[2])?))
                    }
                    "U" | "Union" => {
                        let mut members = Vec::new();
                        for t in &items[1..] {
                            members.push(self.ty(t)?);
                        }
                        Ok(Ty::union_of(members))
                    }
                    "All" | "∀" => {
                        let [_, vars, body] = items.as_slice() else {
                            return err(*pos, "(All (A …) T)");
                        };
                        let Some(var_list) = vars.as_list() else {
                            return err(vars.pos(), "All expects a variable list");
                        };
                        let mut names = Vec::new();
                        for v in var_list {
                            let Some(name) = v.as_symbol() else {
                                return err(v.pos(), "type variable must be a symbol");
                            };
                            names.push(Symbol::intern(name));
                        }
                        let added: Vec<Symbol> = names
                            .iter()
                            .copied()
                            .filter(|n| self.tvars.insert(*n))
                            .collect();
                        let body = self.ty(body);
                        for n in added {
                            self.tvars.remove(&n);
                        }
                        Ok(Ty::poly(names, body?))
                    }
                    "Refine" => {
                        let [_, binder, prop] = items.as_slice() else {
                            return err(*pos, "(Refine [x : T] ψ)");
                        };
                        let (x, base) = self.binder(binder)?;
                        Ok(Ty::refine(x, base, self.prop(prop)?))
                    }
                    _ => err(*pos, format!("unknown type form {s}")),
                }
            }
            _ => err(s.pos(), format!("expected a type, got {s}")),
        }
    }

    fn base_ty(&self, name: &str, pos: Span) -> Result<Ty, ElabError> {
        Ok(match name {
            "Int" | "Integer" => Ty::Int,
            "Bool" | "Boolean" => Ty::bool_ty(),
            "True" => Ty::True,
            "False" => Ty::False,
            "Unit" | "Void" => Ty::Unit,
            "BitVec" | "BitVector" => Ty::BitVec,
            "Str" | "String" => Ty::Str,
            "Regex" | "Regexp" => Ty::Regex,
            "Any" | "Top" => Ty::Top,
            "Nothing" | "Bot" => Ty::bot(),
            // Nat = {i:Int | 0 ≤ i} — the §4.4/§5.1 annotation.
            "Nat" | "Natural" => {
                let i = Symbol::fresh("nat");
                Ty::refine(i, Ty::Int, Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(i)))
            }
            // Byte = {b:BitVec | b ≤ #xff} (§2.2).
            "Byte" => {
                let b = Symbol::fresh("byte");
                Ty::refine(
                    b,
                    Ty::BitVec,
                    Prop::bv(Obj::var(b), BvCmp::Ule, Obj::bv(0xff)),
                )
            }
            other => {
                let sym = Symbol::intern(other);
                if self.tvars.contains(&sym) {
                    Ty::TVar(sym)
                } else {
                    return err(pos, format!("unknown type {other}"));
                }
            }
        })
    }

    /// `[x : T]`, the paper's refined-domain sugar `[x : T #:where ψ]`
    /// (e.g. §2.1's `[i : Int #:where (∧ (≤ 0 i) (< i (len v)))]`), or a
    /// bare type, given a fresh name.
    fn binder(&mut self, s: &Sexp) -> Result<(Symbol, Ty), ElabError> {
        if let Some(items) = s.as_list() {
            if items.len() >= 3
                && items[0].as_symbol().is_some()
                && items[1].as_symbol() == Some(":")
            {
                let name = items[0].as_symbol().expect("checked");
                let x = Symbol::intern(name);
                match &items[2..] {
                    [t] => return Ok((x, self.ty(t)?)),
                    [t, Sexp::Keyword(k, _), prop] if k == "where" => {
                        let base = self.ty(t)?;
                        // The refinement binds the parameter's own name, so
                        // the proposition may mention it directly.
                        return Ok((x, Ty::refine(x, base, self.prop(prop)?)));
                    }
                    _ => return err(s.pos(), "binder must be [x : T] or [x : T #:where ψ]"),
                }
            }
        }
        Ok((Symbol::fresh("arg"), self.ty(s)?))
    }

    fn arrow_ty(&mut self, doms: &[Sexp], rng: &[Sexp], pos: Span) -> Result<Ty, ElabError> {
        let mut params = Vec::new();
        for d in doms {
            params.push(self.binder(d)?);
        }
        let range = match rng {
            [r] => self.range_ty(r)?,
            _ => return err(pos, "arrow type needs exactly one range"),
        };
        Ok(Ty::fun(params, range))
    }

    /// A range: a type, or `[z : T #:where ψ]` (the paper's sugar for a
    /// refined range).
    fn range_ty(&mut self, s: &Sexp) -> Result<TyResult, ElabError> {
        if let Some(items) = s.as_list() {
            if items.len() == 5
                && items[1].as_symbol() == Some(":")
                && matches!(&items[3], Sexp::Keyword(k, _) if k == "where")
            {
                let Some(name) = items[0].as_symbol() else {
                    return err(items[0].pos(), "range binder must be a symbol");
                };
                let z = Symbol::intern(name);
                let base = self.ty(&items[2])?;
                let prop = self.prop(&items[4])?;
                return Ok(TyResult::of_type(Ty::refine(z, base, prop)));
            }
        }
        Ok(TyResult::of_type(self.ty(s)?))
    }

    // --- propositions ---------------------------------------------------------

    /// Elaborates a proposition (the ψ of `#:where`/`Refine`).
    pub fn prop(&mut self, s: &Sexp) -> Result<Prop, ElabError> {
        match s {
            Sexp::Symbol(name, pos) => match name.as_str() {
                "tt" | "true" => Ok(Prop::TT),
                "ff" | "false" => Ok(Prop::FF),
                _ => err(*pos, format!("unknown proposition {name}")),
            },
            Sexp::List(items, pos) => {
                let head = items.first().and_then(Sexp::as_symbol).unwrap_or("");
                match head {
                    "and" | "∧" => {
                        let mut p = Prop::TT;
                        for q in &items[1..] {
                            p = Prop::and(p, self.prop(q)?);
                        }
                        Ok(p)
                    }
                    "or" | "∨" => {
                        let mut p = Prop::FF;
                        for q in &items[1..] {
                            p = Prop::or(p, self.prop(q)?);
                        }
                        Ok(p)
                    }
                    "<" | "<=" | ">" | ">=" | "=" | "!=" | "≤" | "≥" => {
                        self.chain_cmp(head, &items[1..], *pos)
                    }
                    "bv=" | "bv<=" | "bv<" => {
                        let [_, a, b] = items.as_slice() else {
                            return err(*pos, format!("({head} o o)"));
                        };
                        let cmp = match head {
                            "bv=" => BvCmp::Eq,
                            "bv<=" => BvCmp::Ule,
                            _ => BvCmp::Ult,
                        };
                        Ok(Prop::bv(self.obj(a)?, cmp, self.obj(b)?))
                    }
                    "=~" | "!~" => {
                        let [_, o, r] = items.as_slice() else {
                            return err(*pos, format!("({head} s #rx\"…\")"));
                        };
                        let p = Prop::re_match(&self.obj(o)?, &self.obj(r)?);
                        if head == "=~" {
                            Ok(p)
                        } else {
                            match p.negate() {
                                Some(n) => Ok(n),
                                None => Ok(Prop::TT),
                            }
                        }
                    }
                    "is" => {
                        let [_, o, t] = items.as_slice() else {
                            return err(*pos, "(is o T)");
                        };
                        Ok(Prop::is(self.obj(o)?, self.ty(t)?))
                    }
                    "isnot" | "is-not" => {
                        let [_, o, t] = items.as_slice() else {
                            return err(*pos, "(isnot o T)");
                        };
                        Ok(Prop::is_not(self.obj(o)?, self.ty(t)?))
                    }
                    _ => err(*pos, format!("unknown proposition form {s}")),
                }
            }
            _ => err(s.pos(), format!("expected a proposition, got {s}")),
        }
    }

    /// N-ary comparison chains, as in the paper's `(≤ 0 i (sub1 (len v)))`.
    fn chain_cmp(&mut self, op: &str, args: &[Sexp], pos: Span) -> Result<Prop, ElabError> {
        if args.len() < 2 {
            return err(pos, format!("({op} …) needs at least two operands"));
        }
        let mut objs = Vec::new();
        for a in args {
            objs.push(self.obj(a)?);
        }
        let mut p = Prop::TT;
        for w in objs.windows(2) {
            let (a, b) = (w[0].clone(), w[1].clone());
            let atom = match op {
                "<" => Prop::lin(a, LinCmp::Lt, b),
                "<=" | "≤" => Prop::lin(a, LinCmp::Le, b),
                ">" => Prop::lin(b, LinCmp::Lt, a),
                ">=" | "≥" => Prop::lin(b, LinCmp::Le, a),
                "=" => Prop::lin(a, LinCmp::Eq, b),
                _ => Prop::lin(a, LinCmp::Ne, b),
            };
            p = Prop::and(p, atom);
        }
        Ok(p)
    }

    /// Parses a regex literal's pattern, positioning errors at the literal.
    fn regex(
        &mut self,
        pat: &str,
        pos: Span,
    ) -> Result<std::sync::Arc<rtr_solver::re::Regex>, ElabError> {
        match rtr_solver::re::Regex::parse(pat) {
            Ok(r) => Ok(std::sync::Arc::new(r)),
            Err(e) => err(pos, format!("bad regex literal: {e}")),
        }
    }

    // --- symbolic objects -------------------------------------------------------

    /// Elaborates a symbolic object (the linear/bitvector terms allowed in
    /// propositions, §3.4).
    pub fn obj(&mut self, s: &Sexp) -> Result<Obj, ElabError> {
        match s {
            Sexp::Int(n, _) => Ok(Obj::int(*n)),
            Sexp::BvHex(v, _) => Ok(Obj::bv(*v)),
            Sexp::Str(s, _) => Ok(Obj::str_const(s.as_str())),
            Sexp::Regex(pat, pos) => Ok(Obj::re(self.regex(pat, *pos)?)),
            Sexp::Symbol(name, _) => Ok(Obj::var(Symbol::intern(name))),
            Sexp::List(items, pos) => {
                let head = items.first().and_then(Sexp::as_symbol).unwrap_or("");
                let rest = &items[1..];
                match head {
                    "len" | "vector-length" | "string-length" => {
                        let [o] = rest else {
                            return err(*pos, "(len o)");
                        };
                        Ok(self.obj(o)?.len())
                    }
                    "fst" | "car" => {
                        let [o] = rest else {
                            return err(*pos, "(fst o)");
                        };
                        Ok(self.obj(o)?.fst())
                    }
                    "snd" | "cdr" => {
                        let [o] = rest else {
                            return err(*pos, "(snd o)");
                        };
                        Ok(self.obj(o)?.snd())
                    }
                    "+" => {
                        let mut acc = Obj::int(0);
                        for o in rest {
                            acc = acc.add(&self.obj(o)?);
                        }
                        Ok(acc)
                    }
                    "-" => match rest {
                        [a] => Ok(self.obj(a)?.scale(-1)),
                        [a, b] => Ok(self.obj(a)?.sub(&self.obj(b)?)),
                        _ => err(*pos, "(- o o)"),
                    },
                    "*" => {
                        let [a, b] = rest else {
                            return err(*pos, "(* n o)");
                        };
                        Ok(self.obj(a)?.mul(&self.obj(b)?))
                    }
                    "add1" => {
                        let [a] = rest else {
                            return err(*pos, "(add1 o)");
                        };
                        Ok(self.obj(a)?.add(&Obj::int(1)))
                    }
                    "sub1" => {
                        let [a] = rest else {
                            return err(*pos, "(sub1 o)");
                        };
                        Ok(self.obj(a)?.sub(&Obj::int(1)))
                    }
                    "bvand" | "AND" => self.bv_obj2(rest, *pos, Obj::bv_and),
                    "bvor" | "OR" => self.bv_obj2(rest, *pos, Obj::bv_or),
                    "bvxor" | "XOR" => self.bv_obj2(rest, *pos, Obj::bv_xor),
                    "bvadd" => self.bv_obj2(rest, *pos, Obj::bv_add),
                    "bvsub" => self.bv_obj2(rest, *pos, Obj::bv_sub),
                    "bvmul" => self.bv_obj2(rest, *pos, Obj::bv_mul),
                    "bvnot" | "NOT" => {
                        let [a] = rest else {
                            return err(*pos, "(bvnot o)");
                        };
                        Ok(self.obj(a)?.bv_not())
                    }
                    _ => err(*pos, format!("unknown object form {s}")),
                }
            }
            _ => err(s.pos(), format!("expected a symbolic object, got {s}")),
        }
    }

    fn bv_obj2(
        &mut self,
        rest: &[Sexp],
        pos: Span,
        f: impl Fn(&Obj, &Obj) -> Obj,
    ) -> Result<Obj, ElabError> {
        let [a, b] = rest else {
            return err(pos, "bitvector op takes two objects");
        };
        Ok(f(&self.obj(a)?, &self.obj(b)?))
    }

    // --- expressions --------------------------------------------------------------

    /// Elaborates an expression, recording its span: the produced core
    /// expression is wrapped in [`Expr::Spanned`] with a node in this
    /// elaborator's span table.
    pub fn expr(&mut self, s: &Sexp) -> Result<Expr, ElabError> {
        let span = s.span();
        let node = self.spans.insert(span);
        let prev = self.current.replace(node);
        let result = self.expr_inner(s);
        self.current = prev;
        Ok(Expr::spanned(node, result?))
    }

    fn expr_inner(&mut self, s: &Sexp) -> Result<Expr, ElabError> {
        match s {
            Sexp::Int(n, _) => Ok(Expr::Int(*n)),
            Sexp::Bool(b, _) => Ok(Expr::Bool(*b)),
            Sexp::BvHex(v, _) => Ok(Expr::BvLit(*v)),
            Sexp::Str(s, _) => Ok(Expr::Str(std::sync::Arc::from(s.as_str()))),
            Sexp::Regex(pat, pos) => Ok(Expr::ReLit(self.regex(pat, *pos)?)),
            Sexp::Keyword(k, pos) => err(*pos, format!("unexpected keyword #:{k}")),
            Sexp::Symbol(name, pos) => {
                if let Some(p) = lookup_prim(name) {
                    return Ok(Expr::Prim(p));
                }
                if is_reserved(name) {
                    return err(*pos, format!("{name} is syntax, not an expression"));
                }
                Ok(Expr::Var(Symbol::intern(name)))
            }
            Sexp::List(items, pos) => {
                let head = items.first().and_then(Sexp::as_symbol).unwrap_or("");
                match head {
                    "lambda" | "λ" => self.lambda(&items[1..], *pos),
                    "let" => self.let_form(&items[1..], *pos),
                    "let*" => self.let_like(&items[1..], *pos, false),
                    "letrec" => self.letrec_form(&items[1..], *pos),
                    "if" => match &items[1..] {
                        [c, t, e] => Ok(Expr::if_(self.expr(c)?, self.expr(t)?, self.expr(e)?)),
                        [c, t] => Ok(Expr::if_(self.expr(c)?, self.expr(t)?, Expr::Begin(vec![]))),
                        _ => err(*pos, "(if c t e)"),
                    },
                    "cond" => self.cond_form(&items[1..], *pos),
                    "and" => Ok(expand::and_form(self.exprs(&items[1..])?)),
                    "or" => Ok(expand::or_form(self.exprs(&items[1..])?)),
                    "when" => {
                        let [c, body @ ..] = &items[1..] else {
                            return err(*pos, "(when c e …)");
                        };
                        let body = expand::begin_form(self.exprs(body)?);
                        Ok(Expr::if_(self.expr(c)?, body, Expr::Begin(vec![])))
                    }
                    "unless" => {
                        let [c, body @ ..] = &items[1..] else {
                            return err(*pos, "(unless c e …)");
                        };
                        let body = expand::begin_form(self.exprs(body)?);
                        Ok(Expr::if_(self.expr(c)?, Expr::Begin(vec![]), body))
                    }
                    "begin" => Ok(expand::begin_form(self.exprs(&items[1..])?)),
                    "cons" => {
                        let [a, b] = &items[1..] else {
                            return err(*pos, "(cons a b)");
                        };
                        Ok(Expr::Cons(Box::new(self.expr(a)?), Box::new(self.expr(b)?)))
                    }
                    "fst" | "car" => {
                        let [a] = &items[1..] else {
                            return err(*pos, "(fst e)");
                        };
                        Ok(Expr::Fst(Box::new(self.expr(a)?)))
                    }
                    "snd" | "cdr" => {
                        let [a] = &items[1..] else {
                            return err(*pos, "(snd e)");
                        };
                        Ok(Expr::Snd(Box::new(self.expr(a)?)))
                    }
                    "vec" | "vector" => Ok(Expr::VecLit(self.exprs(&items[1..])?)),
                    "error" => match &items[1..] {
                        [Sexp::Str(msg, _)] => Ok(Expr::Error(msg.clone())),
                        _ => err(*pos, "(error \"message\")"),
                    },
                    "set!" => {
                        let [x, e] = &items[1..] else {
                            return err(*pos, "(set! x e)");
                        };
                        let Some(name) = x.as_symbol() else {
                            return err(x.pos(), "set! target must be a variable");
                        };
                        Ok(Expr::Set(Symbol::intern(name), Box::new(self.expr(e)?)))
                    }
                    "ann" => {
                        let [e, t] = &items[1..] else {
                            return err(*pos, "(ann e T)");
                        };
                        Ok(Expr::ann(self.expr(e)?, self.ty(t)?))
                    }
                    "for/sum" => expand::for_sum(self, &items[1..], *pos),
                    // A non-symbol head (e.g. an immediate lambda
                    // application) falls through to the application case;
                    // only a genuinely empty list is an error.
                    "" if items.is_empty() => err(*pos, "empty application"),
                    // Racket's comparison operators are variadic:
                    // (< a b c) tests a<b<c, evaluating each operand once.
                    "<" | "<=" | ">" | ">=" | "=" if items.len() > 3 => {
                        let args = self.exprs(&items[1..])?;
                        Ok(expand::cmp_chain(head, args))
                    }
                    _ => {
                        // Application. Primitive operator heads are left
                        // unwrapped: diagnostics anchor to arguments or
                        // the application itself, and the checker's
                        // prim fast path stays a direct match.
                        let f = match items[0].as_symbol().and_then(lookup_prim) {
                            Some(p) => Expr::Prim(p),
                            None => self.expr(&items[0])?,
                        };
                        Ok(Expr::app(f, self.exprs(&items[1..])?))
                    }
                }
            }
        }
    }

    pub(crate) fn exprs(&mut self, items: &[Sexp]) -> Result<Vec<Expr>, ElabError> {
        items.iter().map(|s| self.expr(s)).collect()
    }

    fn lambda(&mut self, rest: &[Sexp], pos: Span) -> Result<Expr, ElabError> {
        let [params, body @ ..] = rest else {
            return err(pos, "(lambda (params) body …)");
        };
        let Some(param_list) = params.as_list() else {
            return err(params.pos(), "lambda expects a parameter list");
        };
        let mut ps = Vec::new();
        for p in param_list {
            if let Some(name) = p.as_symbol() {
                ps.push((Symbol::intern(name), Ty::Top));
            } else {
                ps.push(self.binder(p)?);
            }
        }
        if body.is_empty() {
            return err(pos, "lambda needs a body");
        }
        let body = expand::begin_form(self.exprs(body)?);
        Ok(Expr::lam(ps, body))
    }

    fn let_form(&mut self, rest: &[Sexp], pos: Span) -> Result<Expr, ElabError> {
        self.let_like(rest, pos, /* parallel: */ true)
    }

    /// `let` (parallel: right-hand sides cannot see the new bindings, as
    /// in Racket — implemented with fresh temporaries) and `let*`
    /// (sequential).
    fn let_like(&mut self, rest: &[Sexp], pos: Span, parallel: bool) -> Result<Expr, ElabError> {
        // Named let: (let loop : R ([x : T e] …) body …).
        if let Some(name) = rest.first().and_then(Sexp::as_symbol) {
            return expand::named_let(self, name, &rest[1..], pos);
        }
        let [bindings, body @ ..] = rest else {
            return err(pos, "(let (bindings) body …)");
        };
        let Some(binds) = bindings.as_list() else {
            return err(bindings.pos(), "let expects a binding list");
        };
        if body.is_empty() {
            return err(pos, "let needs a body");
        }
        let mut parsed: Vec<(Symbol, Option<Ty>, Expr)> = Vec::with_capacity(binds.len());
        for b in binds {
            let Some(items) = b.as_list() else {
                return err(b.pos(), "binding must be [x e] or [x : T e]");
            };
            match items {
                [x, e] => {
                    let Some(name) = x.as_symbol() else {
                        return err(x.pos(), "binding name must be a symbol");
                    };
                    parsed.push((Symbol::intern(name), None, self.expr(e)?));
                }
                [x, colon, t, e] if colon.as_symbol() == Some(":") => {
                    let Some(name) = x.as_symbol() else {
                        return err(x.pos(), "binding name must be a symbol");
                    };
                    parsed.push((Symbol::intern(name), Some(self.ty(t)?), self.expr(e)?));
                }
                _ => return err(b.pos(), "binding must be [x e] or [x : T e]"),
            }
        }
        let mut out = expand::begin_form(self.exprs(body)?);
        if parallel && parsed.len() > 1 {
            // Evaluate all right-hand sides into temporaries first, then
            // bind the visible names — Racket's parallel `let`.
            let temps: Vec<Symbol> = parsed
                .iter()
                .map(|(x, _, _)| Symbol::fresh(x.as_str()))
                .collect();
            for ((x, ann, _), tmp) in parsed.iter().zip(&temps).rev() {
                let rhs = match ann {
                    Some(t) => Expr::ann(Expr::Var(*tmp), t.clone()),
                    None => Expr::Var(*tmp),
                };
                out = Expr::let_(*x, rhs, out);
            }
            for ((_, _, rhs), tmp) in parsed.into_iter().zip(temps).rev() {
                out = Expr::let_(tmp, rhs, out);
            }
        } else {
            for (x, ann, rhs) in parsed.into_iter().rev() {
                let rhs = match ann {
                    Some(t) => Expr::ann(rhs, t),
                    None => rhs,
                };
                out = Expr::let_(x, rhs, out);
            }
        }
        Ok(out)
    }

    fn letrec_form(&mut self, rest: &[Sexp], pos: Span) -> Result<Expr, ElabError> {
        let [bindings, body @ ..] = rest else {
            return err(pos, "(letrec (bindings) body …)");
        };
        let Some(binds) = bindings.as_list() else {
            return err(bindings.pos(), "letrec expects a binding list");
        };
        if body.is_empty() {
            return err(pos, "letrec needs a body");
        }
        let mut out = expand::begin_form(self.exprs(body)?);
        for b in binds.iter().rev() {
            let Some([x, colon, t, e]) = b
                .as_list()
                .filter(|l| l.len() == 4)
                .map(|l| [&l[0], &l[1], &l[2], &l[3]])
            else {
                return err(b.pos(), "letrec binding must be [f : T (lambda …)]");
            };
            if colon.as_symbol() != Some(":") {
                return err(b.pos(), "letrec binding must be [f : T (lambda …)]");
            }
            let Some(name) = x.as_symbol() else {
                return err(x.pos(), "letrec name must be a symbol");
            };
            let fty = self.ty(t)?;
            let Expr::Lam(lam) = self.expr(e)? else {
                return err(e.pos(), "letrec right-hand side must be a lambda");
            };
            out = Expr::LetRec(Symbol::intern(name), fty, lam, Box::new(out));
        }
        Ok(out)
    }

    fn cond_form(&mut self, clauses: &[Sexp], pos: Span) -> Result<Expr, ElabError> {
        let mut out = Expr::Begin(vec![]);
        for (i, clause) in clauses.iter().enumerate().rev() {
            let Some(items) = clause.as_list() else {
                return err(clause.pos(), "cond clause must be [test body …]");
            };
            let [test, body @ ..] = items else {
                return err(clause.pos(), "cond clause must be [test body …]");
            };
            if test.as_symbol() == Some("else") {
                if i + 1 != clauses.len() {
                    return err(clause.pos(), "else must be the last cond clause");
                }
                out = expand::begin_form(self.exprs(body)?);
            } else {
                let body = expand::begin_form(self.exprs(body)?);
                out = Expr::if_(self.expr(test)?, body, out);
            }
        }
        if clauses.is_empty() {
            return err(pos, "cond needs at least one clause");
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sexp::read_one;

    fn elab_ty(src: &str) -> Ty {
        Elaborator::new().ty(&read_one(src).unwrap()).unwrap()
    }

    fn elab_expr(src: &str) -> Expr {
        // Structural comparisons below look through the span wrappers.
        Elaborator::new()
            .expr(&read_one(src).unwrap())
            .unwrap()
            .strip_spans()
    }

    #[test]
    fn base_types() {
        assert_eq!(elab_ty("Int"), Ty::Int);
        assert_eq!(elab_ty("Bool"), Ty::bool_ty());
        assert_eq!(elab_ty("(Vecof Int)"), Ty::vec(Ty::Int));
        assert_eq!(
            elab_ty("(U Int Bool)"),
            Ty::union_of(vec![Ty::Int, Ty::bool_ty()])
        );
        assert!(matches!(elab_ty("Nat"), Ty::Refine(_)));
        assert!(matches!(elab_ty("Byte"), Ty::Refine(_)));
    }

    #[test]
    fn arrow_types_infix_and_prefix() {
        let t1 = elab_ty("([x : Int] [y : Int] -> Int)");
        let Ty::Fun(f) = &t1 else { panic!("not a fun") };
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].0, Symbol::intern("x"));
        let t2 = elab_ty("(-> Int Int Int)");
        let Ty::Fun(f) = &t2 else { panic!("not a fun") };
        assert_eq!(f.params.len(), 2);
    }

    #[test]
    fn refined_range_sugar() {
        // Fig. 1's max type.
        let t = elab_ty("([x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])");
        let Ty::Fun(f) = &t else { panic!("not a fun") };
        assert!(matches!(f.range.ty, Ty::Refine(_)));
    }

    #[test]
    fn polymorphic_types() {
        let t = elab_ty("(All (A) ([v : (Vecof A)] -> A))");
        let Ty::Poly(p) = &t else { panic!("not poly") };
        assert_eq!(p.vars.len(), 1);
        // The tvar does not leak.
        assert!(Elaborator::new().ty(&read_one("A").unwrap()).is_err());
    }

    #[test]
    fn comparison_chains() {
        // (≤ 0 i (len v)) = 0 ≤ i ∧ i ≤ len v.
        let p = Elaborator::new()
            .prop(&read_one("(<= 0 i (len v))").unwrap())
            .unwrap();
        let i = || Obj::var(Symbol::intern("i"));
        let v = || Obj::var(Symbol::intern("v")).len();
        assert_eq!(
            p,
            Prop::and(
                Prop::lin(Obj::int(0), LinCmp::Le, i()),
                Prop::lin(i(), LinCmp::Le, v()),
            )
        );
    }

    #[test]
    fn expressions() {
        assert_eq!(elab_expr("42"), Expr::Int(42));
        assert_eq!(
            elab_expr("(+ 1 2)"),
            Expr::prim_app(
                rtr_core::syntax::Prim::Plus,
                vec![Expr::Int(1), Expr::Int(2)]
            )
        );
        assert!(matches!(elab_expr("(lambda ([x : Int]) x)"), Expr::Lam(_)));
        assert!(matches!(elab_expr("(if #t 1 2)"), Expr::If(..)));
        assert!(matches!(elab_expr("(error \"boom\")"), Expr::Error(_)));
        assert!(matches!(elab_expr("(vec 1 2 3)"), Expr::VecLit(_)));
    }

    #[test]
    fn immediate_lambda_application() {
        // ((lambda (x) …) 1) — a list-headed application, not an "empty
        // application" (regression: the head-symbol dispatch used to
        // reject any non-symbol operator).
        let e = elab_expr("((lambda ([x : Int]) (add1 x)) 1)");
        let Expr::App(f, args) = e else {
            panic!("expected application")
        };
        assert!(matches!(*f, Expr::Lam(_)));
        assert_eq!(args, vec![Expr::Int(1)]);
        // The empty list is still an error.
        assert!(Elaborator::new().expr(&read_one("()").unwrap()).is_err());
    }

    #[test]
    fn cond_expands_to_ifs() {
        let e = elab_expr("(cond [(zero? x) 1] [(int? x) 2] [else 3])");
        let Expr::If(_, _, else1) = e else {
            panic!("expected if")
        };
        assert!(matches!(*else1, Expr::If(..)));
    }

    #[test]
    fn and_or_expand() {
        // (and a b) = (if a b #f); (or a b) = (let (t a) (if t t b)).
        let e = elab_expr("(and #t #f)");
        assert!(matches!(e, Expr::If(..)));
        let e = elab_expr("(or #t #f)");
        assert!(matches!(e, Expr::Let(..)));
        assert_eq!(elab_expr("(and)"), Expr::Bool(true));
        assert_eq!(elab_expr("(or)"), Expr::Bool(false));
    }

    #[test]
    fn begin_threads_through_lets() {
        let e = elab_expr("(begin (set! x 1) 2)");
        assert!(
            matches!(e, Expr::Let(..)),
            "begin must elaborate to let-chains, got {e}"
        );
    }

    #[test]
    fn syntax_errors_are_positioned() {
        let e = Elaborator::new()
            .expr(&read_one("(if #t)").unwrap())
            .unwrap_err();
        assert!(e.message.contains("if"));
        assert!(Elaborator::new().ty(&read_one("(Vecof)").unwrap()).is_err());
        assert!(Elaborator::new()
            .expr(&read_one("(error 42)").unwrap())
            .is_err());
    }
}
