//! The base environment: surface names for the enriched primitives.
//!
//! This is the surface counterpart of the paper's base-type-environment
//! enrichment (§5: "modifying the type of 36 functions … 7 vector
//! operations, 16 arithmetic operations, 12 fixnum operations, and
//! `equal?`"). Racket-style aliases (`vector-ref`, `vector-length`, the
//! AES example's `AND`/`XOR`) map onto the same primitives.

use rtr_core::syntax::Prim;

/// Looks up a surface identifier in the base environment.
pub fn lookup_prim(name: &str) -> Option<Prim> {
    Some(match name {
        "int?" | "integer?" | "exact-integer?" | "fixnum?" => Prim::IsInt,
        "bool?" | "boolean?" => Prim::IsBool,
        "pair?" | "cons?" => Prim::IsPair,
        "vec?" | "vector?" => Prim::IsVec,
        "proc?" | "procedure?" => Prim::IsProc,
        "bv?" | "bitvector?" => Prim::IsBv,
        "not" | "false?" => Prim::Not,
        "zero?" => Prim::IsZero,
        "even?" => Prim::IsEven,
        "odd?" => Prim::IsOdd,
        "add1" | "fx+1" => Prim::Add1,
        "sub1" | "fx-1" => Prim::Sub1,
        "+" | "fx+" => Prim::Plus,
        "-" | "fx-" => Prim::Minus,
        "*" | "fx*" => Prim::Times,
        "quotient" | "div" | "fxquotient" => Prim::Quotient,
        "remainder" | "modulo" | "mod" | "fxremainder" => Prim::Remainder,
        "<" | "fx<" => Prim::Lt,
        "<=" | "fx<=" | "≤" => Prim::Le,
        ">" | "fx>" => Prim::Gt,
        ">=" | "fx>=" | "≥" => Prim::Ge,
        "=" | "fx=" => Prim::NumEq,
        "equal?" | "eqv?" => Prim::Equal,
        "len" | "vector-length" | "vec-length" => Prim::Len,
        "vec-ref" | "vector-ref" => Prim::VecRef,
        "unsafe-vec-ref" | "unsafe-vector-ref" => Prim::UnsafeVecRef,
        "safe-vec-ref" | "safe-vector-ref" => Prim::SafeVecRef,
        "vec-set!" | "vector-set!" => Prim::VecSet,
        "unsafe-vec-set!" | "unsafe-vector-set!" => Prim::UnsafeVecSet,
        "safe-vec-set!" | "safe-vector-set!" => Prim::SafeVecSet,
        "make-vec" | "make-vector" => Prim::MakeVec,
        "string?" => Prim::IsStr,
        "string-length" => Prim::StrLen,
        "string=?" => Prim::StrEq,
        "regexp-match?" => Prim::StrMatch,
        "bvand" | "AND" => Prim::BvAnd,
        "bvor" | "OR" | "IOR" => Prim::BvOr,
        "bvxor" | "XOR" => Prim::BvXor,
        "bvnot" | "NOT" => Prim::BvNot,
        "bvadd" | "bv+" => Prim::BvAdd,
        "bvsub" | "bv-" => Prim::BvSub,
        "bvmul" | "bv*" => Prim::BvMul,
        "bv=" => Prim::BvEq,
        "bv<=" => Prim::BvUle,
        "bv<" => Prim::BvUlt,
        _ => return None,
    })
}

/// Is this name reserved syntax (not available as a variable)?
pub fn is_reserved(name: &str) -> bool {
    matches!(
        name,
        "define"
            | "lambda"
            | "λ"
            | "let"
            | "let*"
            | "letrec"
            | "if"
            | "cond"
            | "else"
            | "and"
            | "or"
            | "when"
            | "unless"
            | "begin"
            | "set!"
            | "ann"
            | "error"
            | "cons"
            | "fst"
            | "snd"
            | "car"
            | "cdr"
            | "vec"
            | "vector"
            | "for/sum"
            | "in-range"
            | ":"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names_resolve() {
        assert_eq!(lookup_prim("int?"), Some(Prim::IsInt));
        assert_eq!(lookup_prim("vector-ref"), Some(Prim::VecRef));
        assert_eq!(lookup_prim("safe-vec-ref"), Some(Prim::SafeVecRef));
        assert_eq!(lookup_prim("XOR"), Some(Prim::BvXor));
        assert_eq!(lookup_prim("nonsense"), None);
    }

    #[test]
    fn every_prim_is_reachable_from_the_surface() {
        use std::collections::HashSet;
        let mut reached = HashSet::new();
        for name in [
            "int?",
            "bool?",
            "pair?",
            "vec?",
            "proc?",
            "bv?",
            "not",
            "zero?",
            "even?",
            "odd?",
            "add1",
            "sub1",
            "+",
            "-",
            "*",
            "quotient",
            "remainder",
            "<",
            "<=",
            ">",
            ">=",
            "=",
            "equal?",
            "len",
            "vec-ref",
            "unsafe-vec-ref",
            "safe-vec-ref",
            "vec-set!",
            "unsafe-vec-set!",
            "safe-vec-set!",
            "make-vec",
            "string?",
            "string-length",
            "string=?",
            "regexp-match?",
            "bvand",
            "bvor",
            "bvxor",
            "bvnot",
            "bvadd",
            "bvsub",
            "bvmul",
            "bv=",
            "bv<=",
            "bv<",
        ] {
            reached.insert(lookup_prim(name).expect(name));
        }
        assert_eq!(reached.len(), Prim::all().len());
    }

    #[test]
    fn reserved_words() {
        assert!(is_reserved("define"));
        assert!(is_reserved("for/sum"));
        assert!(!is_reserved("max"));
    }
}
