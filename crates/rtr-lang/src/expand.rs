//! Derived-form expansion, including the `for/sum` → `letrec` expansion
//! of §4.4 with its index-annotation heuristic.
//!
//! Typed Racket type checks *after* macro expansion, so the checker never
//! sees `for/sum` — it sees the recursive loop the macro leaves behind.
//! We reproduce that pipeline: `for/sum` elaborates into exactly the
//! paper's `letrec` skeleton, and the loop parameter's type is chosen by
//! the §4.4 heuristic — `Nat` when the iteration variable (directly or
//! through an alias) indexes a vector in the body, `Int` otherwise. As in
//! the paper, the heuristic succeeds for forward iteration and fails for
//! reverse iteration (`(in-range e 0 -1)`), whose final index value
//! would be -1.

use rtr_core::syntax::{Expr, Lambda, LinCmp, Obj, Prim, Prop, Symbol, Ty, TyResult};

use crate::elab::{err, ElabError, Elaborator};
use crate::sexp::{Sexp, Span};

/// `(and e …)` as nested conditionals.
pub fn and_form(mut es: Vec<Expr>) -> Expr {
    match es.len() {
        0 => Expr::Bool(true),
        1 => es.pop().expect("len checked"),
        _ => {
            let first = es.remove(0);
            Expr::if_(first, and_form(es), Expr::Bool(false))
        }
    }
}

/// `(or e …)` as let-bound conditionals (the binding keeps the tested
/// value for the result position, as Racket's `or` does).
pub fn or_form(mut es: Vec<Expr>) -> Expr {
    match es.len() {
        0 => Expr::Bool(false),
        1 => es.pop().expect("len checked"),
        _ => {
            let first = es.remove(0);
            let t = Symbol::fresh("or");
            Expr::let_(t, first, Expr::if_(Expr::Var(t), Expr::Var(t), or_form(es)))
        }
    }
}

/// `(begin e … last)` as a `let` chain, so the occurrence information of
/// each statement (e.g. an `unless` guard) scopes over the rest.
pub fn begin_form(mut es: Vec<Expr>) -> Expr {
    match es.len() {
        0 => Expr::Begin(vec![]),
        1 => es.pop().expect("len checked"),
        _ => {
            let first = es.remove(0);
            Expr::let_(Symbol::fresh("ignored"), first, begin_form(es))
        }
    }
}

/// Variadic comparison `(< a b c …)`: each operand is let-bound once,
/// then adjacent pairs are conjoined with `and`.
pub fn cmp_chain(op: &str, args: Vec<Expr>) -> Expr {
    let prim = match op {
        "<" => Prim::Lt,
        "<=" => Prim::Le,
        ">" => Prim::Gt,
        ">=" => Prim::Ge,
        _ => Prim::NumEq,
    };
    let names: Vec<Symbol> = (0..args.len()).map(|_| Symbol::fresh("cmp")).collect();
    let mut body = and_form(
        names
            .windows(2)
            .map(|w| Expr::prim_app(prim, vec![Expr::Var(w[0]), Expr::Var(w[1])]))
            .collect(),
    );
    for (x, e) in names.into_iter().zip(args).rev() {
        body = Expr::let_(x, e, body);
    }
    body
}

/// Named `let`: `(let loop : R ([x : T e] …) body …)` → an annotated
/// `letrec` applied to the initial values.
pub fn named_let(
    elab: &mut Elaborator,
    name: &str,
    rest: &[Sexp],
    pos: Span,
) -> Result<Expr, ElabError> {
    let [colon, range, bindings, body @ ..] = rest else {
        return err(pos, "(let loop : R ([x : T e] …) body …)");
    };
    if colon.as_symbol() != Some(":") {
        return err(colon.pos(), "named let needs a `: R` range annotation");
    }
    let range_ty = elab.ty(range)?;
    let Some(binds) = bindings.as_list() else {
        return err(bindings.pos(), "named let expects a binding list");
    };
    let mut params = Vec::new();
    let mut inits = Vec::new();
    for b in binds {
        let Some([x, colon, t, e]) = b
            .as_list()
            .filter(|l| l.len() == 4)
            .map(|l| [&l[0], &l[1], &l[2], &l[3]])
        else {
            return err(b.pos(), "named-let binding must be [x : T e]");
        };
        if colon.as_symbol() != Some(":") {
            return err(b.pos(), "named-let binding must be [x : T e]");
        }
        let Some(param) = x.as_symbol() else {
            return err(x.pos(), "binding name must be a symbol");
        };
        params.push((Symbol::intern(param), elab.ty(t)?));
        inits.push(elab.expr(e)?);
    }
    if body.is_empty() {
        return err(pos, "named let needs a body");
    }
    let loop_sym = Symbol::intern(name);
    let fun_ty = Ty::fun(params.clone(), TyResult::of_type(range_ty));
    let body = begin_form(elab.exprs(body)?);
    // The initial application is synthesized glue: tag it with the
    // macro-use provenance so errors about the initial values still
    // point at the named-let form.
    let initial_call = elab.tag_synthesized(Expr::app(Expr::Var(loop_sym), inits));
    Ok(Expr::LetRec(
        loop_sym,
        fun_ty,
        std::sync::Arc::new(Lambda { params, body }),
        Box::new(initial_call),
    ))
}

/// The §4.4 heuristic: does the loop variable (or a single-`let` alias of
/// it) appear as the index argument of a vector access in the body?
fn used_as_index(body: &[Sexp], var: &str) -> bool {
    fn scan(s: &Sexp, names: &mut Vec<String>) -> bool {
        let Some(items) = s.as_list() else {
            return false;
        };
        let head = items.first().and_then(Sexp::as_symbol).unwrap_or("");
        if matches!(
            head,
            "vec-ref"
                | "vector-ref"
                | "safe-vec-ref"
                | "safe-vector-ref"
                | "unsafe-vec-ref"
                | "unsafe-vector-ref"
                | "vec-set!"
                | "vector-set!"
                | "safe-vec-set!"
                | "unsafe-vec-set!"
        ) {
            if let Some(idx) = items.get(2) {
                if let Some(name) = idx.as_symbol() {
                    if names.iter().any(|n| n == name) {
                        return true;
                    }
                }
            }
        }
        // Track single-level aliases: (let ([i pos]) …) / (define i pos).
        if head == "let" || head == "let*" {
            if let Some(binds) = items.get(1).and_then(Sexp::as_list) {
                for b in binds {
                    if let Some([x, e]) =
                        b.as_list().filter(|l| l.len() == 2).map(|l| [&l[0], &l[1]])
                    {
                        if let (Some(x), Some(e)) = (x.as_symbol(), e.as_symbol()) {
                            if names.iter().any(|n| n == e) {
                                names.push(x.to_owned());
                            }
                        }
                    }
                }
            }
        }
        items.iter().any(|i| scan(i, names))
    }
    let mut names = vec![var.to_owned()];
    body.iter().any(|s| scan(s, &mut names))
}

/// `(for/sum ([i (in-range …)]) body …)` — the paper's §4.4 expansion:
///
/// ```racket
/// (letrec ([loop (λ (pos acc)
///                  (cond [(< pos end)
///                         (define i pos)
///                         (loop (+ step pos) (+ acc BODY))]
///                        [else acc]))])
///   (loop start 0))
/// ```
///
/// The loop parameter `pos` gets type `Nat` when the §4.4 heuristic fires
/// (the variable indexes a vector), `Int` otherwise.
pub fn for_sum(elab: &mut Elaborator, rest: &[Sexp], pos: Span) -> Result<Expr, ElabError> {
    let [clauses, body @ ..] = rest else {
        return err(pos, "(for/sum ([i (in-range …)]) body …)");
    };
    let Some([clause]) = clauses.as_list().filter(|l| l.len() == 1) else {
        return err(
            clauses.pos(),
            "for/sum supports exactly one iteration clause",
        );
    };
    let Some([ivar, range]) = clause
        .as_list()
        .filter(|l| l.len() == 2)
        .map(|l| [&l[0], &l[1]])
    else {
        return err(clause.pos(), "iteration clause must be [i (in-range …)]");
    };
    let Some(iname) = ivar.as_symbol() else {
        return err(ivar.pos(), "iteration variable must be a symbol");
    };
    let Some(range_items) = range.as_list() else {
        return err(range.pos(), "expected (in-range …)");
    };
    if range_items.first().and_then(Sexp::as_symbol) != Some("in-range") {
        return err(range.pos(), "expected (in-range …)");
    }
    // (in-range end) | (in-range start end) | (in-range start end step)
    let (start_e, end_e, step): (Expr, Expr, i64) = match &range_items[1..] {
        [end] => (Expr::Int(0), elab.expr(end)?, 1),
        [start, end] => (elab.expr(start)?, elab.expr(end)?, 1),
        [start, end, Sexp::Int(step, _)] if *step != 0 => {
            (elab.expr(start)?, elab.expr(end)?, *step)
        }
        _ => return err(range.pos(), "(in-range start end [non-zero literal step])"),
    };
    if body.is_empty() {
        return err(pos, "for/sum needs a body");
    }

    // §4.4 heuristic for the loop parameter's annotation.
    let pos_ty = if used_as_index(body, iname) {
        let n = Symbol::fresh("nat");
        Ty::refine(n, Ty::Int, Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(n)))
    } else {
        Ty::Int
    };

    let loop_sym = Symbol::fresh("loop");
    let pos_sym = Symbol::fresh("pos");
    let acc_sym = Symbol::fresh("acc");
    let start_sym = Symbol::fresh("start");
    let end_sym = Symbol::fresh("end");
    let i_sym = Symbol::intern(iname);

    let body = begin_form(elab.exprs(body)?);
    // Reverse iteration visits start-1 … end (the paper's reading of
    // (in-range e 0 -1): "i steps from (sub1 (len A)) to 0").
    let (test, next, first) = if step > 0 {
        (
            Expr::prim_app(Prim::Lt, vec![Expr::Var(pos_sym), Expr::Var(end_sym)]),
            Expr::prim_app(Prim::Plus, vec![Expr::Var(pos_sym), Expr::Int(step)]),
            Expr::Var(start_sym),
        )
    } else {
        (
            Expr::prim_app(Prim::Ge, vec![Expr::Var(pos_sym), Expr::Var(end_sym)]),
            Expr::prim_app(Prim::Plus, vec![Expr::Var(pos_sym), Expr::Int(step)]),
            Expr::prim_app(Prim::Sub1, vec![Expr::Var(start_sym)]),
        )
    };

    // The recursive call and the accumulator sum are synthesized by the
    // macro: tag them with the macro-use provenance so a diagnostic
    // inside the skeleton (e.g. a body that is not an Int) points back
    // at the `for/sum` form with an expansion note.
    let sum = elab.tag_synthesized(Expr::prim_app(Prim::Plus, vec![Expr::Var(acc_sym), body]));
    let recur = elab.tag_synthesized(Expr::app(Expr::Var(loop_sym), vec![next, sum]));
    let loop_body = Expr::if_(
        test,
        Expr::let_(i_sym, Expr::Var(pos_sym), recur),
        Expr::Var(acc_sym),
    );
    let fun_ty = Ty::fun(
        vec![(pos_sym, pos_ty.clone()), (acc_sym, Ty::Int)],
        TyResult::of_type(Ty::Int),
    );
    let initial_call =
        elab.tag_synthesized(Expr::app(Expr::Var(loop_sym), vec![first, Expr::Int(0)]));
    Ok(Expr::let_(
        start_sym,
        start_e,
        Expr::let_(
            end_sym,
            end_e,
            Expr::LetRec(
                loop_sym,
                fun_ty,
                std::sync::Arc::new(Lambda {
                    params: vec![(pos_sym, pos_ty), (acc_sym, Ty::Int)],
                    body: loop_body,
                }),
                Box::new(initial_call),
            ),
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sexp::read_one;

    #[test]
    fn and_or_base_cases() {
        assert_eq!(and_form(vec![]), Expr::Bool(true));
        assert_eq!(or_form(vec![]), Expr::Bool(false));
        assert_eq!(and_form(vec![Expr::Int(1)]), Expr::Int(1));
    }

    #[test]
    fn begin_chains_lets() {
        let e = begin_form(vec![Expr::Int(1), Expr::Int(2), Expr::Int(3)]);
        let Expr::Let(_, _, rest) = e else {
            panic!("let expected")
        };
        assert!(matches!(*rest, Expr::Let(..)));
    }

    #[test]
    fn index_heuristic_direct_and_aliased() {
        let body = [read_one("(vec-ref A i)").unwrap()];
        assert!(used_as_index(&body, "i"));
        let body = [read_one("(let ([j i]) (safe-vec-ref A j))").unwrap()];
        assert!(used_as_index(&body, "i"));
        let body = [read_one("(+ i 1)").unwrap()];
        assert!(!used_as_index(&body, "i"));
        let body = [read_one("(vec-ref A k)").unwrap()];
        assert!(!used_as_index(&body, "i"));
    }

    #[test]
    fn for_sum_produces_letrec() {
        let mut elab = Elaborator::new();
        let sexp = read_one("(for/sum ([i (in-range (len A))]) (vec-ref A i))").unwrap();
        let items = sexp.as_list().unwrap();
        let e = for_sum(&mut elab, &items[1..], sexp.span()).unwrap();
        // let start, let end, letrec loop …
        let Expr::Let(_, _, rest) = e else {
            panic!("expected let")
        };
        let Expr::Let(_, _, rest) = *rest else {
            panic!("expected let")
        };
        let Expr::LetRec(_, fun_ty, lam, _) = *rest else {
            panic!("expected letrec")
        };
        // Heuristic fired: pos parameter is Nat (a refinement).
        assert!(matches!(lam.params[0].1, Ty::Refine(_)));
        assert!(matches!(fun_ty, Ty::Fun(_)));
    }

    #[test]
    fn for_sum_without_index_use_keeps_int() {
        let mut elab = Elaborator::new();
        let sexp = read_one("(for/sum ([i (in-range 10)]) i)").unwrap();
        let items = sexp.as_list().unwrap();
        let e = for_sum(&mut elab, &items[1..], sexp.span()).unwrap();
        let Expr::Let(_, _, rest) = e else { panic!() };
        let Expr::Let(_, _, rest) = *rest else {
            panic!()
        };
        let Expr::LetRec(_, _, lam, _) = *rest else {
            panic!()
        };
        assert_eq!(lam.params[0].1, Ty::Int);
    }
}
