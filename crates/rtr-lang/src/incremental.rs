//! Source-level incremental checking: textual form slicing feeding the
//! core incremental driver.
//!
//! The core driver ([`rtr_core::incremental`]) splices cached per-item
//! results, but it must not pay for re-*elaborating* unchanged items
//! either — elaboration of a 50-item module costs more than the whole
//! warm re-check budget. This module therefore works on the source
//! *text*:
//!
//! 1. an O(n) `scan_forms` pass slices the file into top-level form
//!    extents without building any trees (it mirrors the reader's
//!    lexical rules — comments, strings, `#rx"…"` literals, brackets);
//! 2. signature forms are paired with their `define` textually,
//!    mirroring the elaborator's latest-unconsumed-signature map, giving
//!    one *slot* per module item in check order (definitions first, then
//!    trailing expressions), each keyed by a hash of its constituent
//!    form texts;
//! 3. slots whose key matches the previous run (FIFO per partition, so
//!    reorders and duplicates resolve positionally) become
//!    [`IncrSlot::Reused`] — their items are only elaborated if the
//!    driver rejects the splice, via the `fetch` callback, with spans
//!    read at their *new* file positions ([`read_all_from`]);
//!    changed slots elaborate eagerly and go in as [`IncrSlot::Fresh`].
//!
//! Anything the fast path cannot prove equivalent — scanner anomalies,
//! unconsumed or overwritten signatures (`W0001` territory), any
//! elaboration error, or a driver refusal — falls back to the
//! from-scratch [`check_module_source`], so the incremental entry point
//! is *never* wrong, only sometimes slower.

use std::collections::HashMap;

use rtr_core::check::Checker;
use rtr_core::diag::{NodeId, Span};
use rtr_core::incremental::{IncrSlot, ItemCache, RecheckStats};
use rtr_core::module::ModuleItem;
use rtr_core::syntax::{Symbol, Ty};

use crate::elab::Elaborator;
use crate::module::{check_module_source, define_form, signature_form, ModuleReport};
use crate::sexp::{read_all_from, Pos, Sexp};

/// What kind of top-level form a slice is, as far as the scanner can
/// tell without parsing.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Head {
    /// `(: name …)` — a signature for `name`.
    Sig(String),
    /// `(define (name …) …)` / `(define name …)`.
    Define(String),
    /// Anything else: a trailing expression.
    Other,
}

/// One top-level form's extent in the source.
#[derive(Clone, Debug)]
struct FormSlice {
    /// Byte range in the source.
    start: usize,
    end: usize,
    /// Line/column of the first character (for absolute re-reading).
    pos: Pos,
    head: Head,
}

impl FormSlice {
    fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// The form's surface extent as a half-open [`Span`], walking the
    /// slice once to find the position just past its last character.
    fn span(&self, src: &str) -> Span {
        let mut end = self.pos;
        for ch in self.text(src).chars() {
            if ch == '\n' {
                end.line += 1;
                end.col = 1;
            } else {
                end.col += 1;
            }
        }
        Span::new(self.pos, end)
    }
}

/// Stable FNV-1a over a slice's text.
fn text_hash(h: &mut u64, s: &str) {
    for b in s.as_bytes() {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Separator so concatenations can't collide across the boundary.
    *h ^= 0xFF;
    *h = h.wrapping_mul(0x0000_0100_0000_01B3);
}

/// Slices `src` into top-level form extents, mirroring the reader's
/// lexical rules. Returns `None` on anything the reader would reject
/// (unbalanced or mismatched delimiters, unterminated strings) — the
/// caller falls back to the full pipeline, which reports the error
/// properly.
fn scan_forms(src: &str) -> Option<Vec<FormSlice>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut pos = Pos { line: 1, col: 1 };

    // Byte-level cursor; the source is UTF-8 and every delimiter we
    // care about is ASCII, so non-ASCII bytes are plain word/string
    // content. Column counts advance per *character*, matching the
    // reader's `Chars`-based positions.
    fn advance(pos: &mut Pos, b: u8) {
        if b == b'\n' {
            pos.line += 1;
            pos.col = 1;
        } else if (b & 0xC0) != 0x80 {
            // Count characters, not continuation bytes.
            pos.col += 1;
        }
    }

    // Consumes a string body starting *after* the opening quote;
    // returns the index just past the closing quote. Backslash escapes
    // any next character (covers both ordinary strings and `#rx"…"`
    // raw patterns, where only termination matters here).
    fn skip_string(bytes: &[u8], mut i: usize, pos: &mut Pos) -> Option<usize> {
        while i < bytes.len() {
            let b = bytes[i];
            advance(pos, b);
            i += 1;
            match b {
                b'"' => return Some(i),
                b'\\' if i < bytes.len() => {
                    advance(pos, bytes[i]);
                    i += 1;
                }
                _ => {}
            }
        }
        None
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Trivia between top-level forms.
        if b.is_ascii_whitespace() {
            advance(&mut pos, b);
            i += 1;
            continue;
        }
        if b == b';' {
            while i < bytes.len() && bytes[i] != b'\n' {
                advance(&mut pos, bytes[i]);
                i += 1;
            }
            continue;
        }
        if b == b')' || b == b']' {
            return None; // reader error: unexpected closer
        }

        let start = i;
        let form_pos = pos;
        // Bytes that cannot affect the bracket stack, start a string or
        // comment, or advance the line count. Runs of them (the bulk of
        // any form) take the tight fast path below; UTF-8 continuation
        // bytes are boring too but do not count a column.
        const BORING: [bool; 256] = {
            let mut t = [true; 256];
            t[b'(' as usize] = false;
            t[b'[' as usize] = false;
            t[b')' as usize] = false;
            t[b']' as usize] = false;
            t[b'"' as usize] = false;
            t[b';' as usize] = false;
            t[b'\n' as usize] = false;
            t
        };

        if b == b'(' || b == b'[' {
            // A list form: track a bracket stack through strings and
            // comments until it empties.
            let mut stack: Vec<u8> = Vec::new();
            while i < bytes.len() {
                let c = bytes[i];
                if BORING[c as usize] {
                    // The stack is untouched, so no emptiness re-check.
                    pos.col += ((c & 0xC0) != 0x80) as u32;
                    i += 1;
                    continue;
                }
                match c {
                    b'(' => stack.push(b')'),
                    b'[' => stack.push(b']'),
                    b')' | b']' => {
                        let opened = stack.pop();
                        if opened != Some(c) {
                            return None; // mismatched delimiter
                        }
                    }
                    b'"' => {
                        advance(&mut pos, c);
                        i = skip_string(bytes, i + 1, &mut pos)?;
                        if stack.is_empty() {
                            break;
                        }
                        continue;
                    }
                    b';' => {
                        while i < bytes.len() && bytes[i] != b'\n' {
                            advance(&mut pos, bytes[i]);
                            i += 1;
                        }
                        continue;
                    }
                    _ => {}
                }
                advance(&mut pos, c);
                i += 1;
                if stack.is_empty() {
                    break;
                }
            }
            if !stack.is_empty() {
                return None; // unterminated form
            }
            let head = classify(&src[start..i])?;
            out.push(FormSlice {
                start,
                end: i,
                pos: form_pos,
                head,
            });
        } else if b == b'"' {
            // A top-level string atom.
            advance(&mut pos, b);
            i = skip_string(bytes, i + 1, &mut pos)?;
            out.push(FormSlice {
                start,
                end: i,
                pos: form_pos,
                head: Head::Other,
            });
        } else {
            // A bare atom: word characters up to a delimiter. `#rx"…"`
            // continues into a string when the word hits a quote.
            while i < bytes.len() {
                let c = bytes[i];
                if c.is_ascii_whitespace() || matches!(c, b'(' | b')' | b'[' | b']' | b';') {
                    break;
                }
                if c == b'"' {
                    advance(&mut pos, c);
                    i = skip_string(bytes, i + 1, &mut pos)?;
                    break;
                }
                advance(&mut pos, c);
                i += 1;
            }
            out.push(FormSlice {
                start,
                end: i,
                pos: form_pos,
                head: Head::Other,
            });
        }
    }
    Some(out)
}

/// Classifies a list form's head textually: `(: name …)`,
/// `(define (name …) …)`, `(define name …)`, or anything else. Returns
/// `None` for signature/define shapes whose name the scanner cannot
/// recover (the elaborator would reject them; let the full path report
/// it).
fn classify(form: &str) -> Option<Head> {
    let mut toks = Tokens::new(&form[1..form.len() - 1]);
    match toks.next_word()? {
        Tok::Word(":") => match toks.next_word() {
            Some(Tok::Word(name)) => Some(Head::Sig(name.to_owned())),
            _ => None,
        },
        Tok::Word("define") => match toks.next_word() {
            Some(Tok::Open) => match toks.next_word() {
                Some(Tok::Word(name)) => Some(Head::Define(name.to_owned())),
                _ => None,
            },
            Some(Tok::Word(name)) => Some(Head::Define(name.to_owned())),
            _ => None,
        },
        _ => Some(Head::Other),
    }
}

enum Tok<'a> {
    Word(&'a str),
    Open,
}

/// A minimal token cursor for [`classify`]: skips trivia, yields words
/// and opening delimiters.
struct Tokens<'a> {
    s: &'a str,
    i: usize,
}

impl<'a> Tokens<'a> {
    fn new(s: &'a str) -> Tokens<'a> {
        Tokens { s, i: 0 }
    }

    fn next_word(&mut self) -> Option<Tok<'a>> {
        let bytes = self.s.as_bytes();
        while self.i < bytes.len() {
            let b = bytes[self.i];
            if b.is_ascii_whitespace() {
                self.i += 1;
            } else if b == b';' {
                while self.i < bytes.len() && bytes[self.i] != b'\n' {
                    self.i += 1;
                }
            } else {
                break;
            }
        }
        if self.i >= bytes.len() {
            return None;
        }
        match bytes[self.i] {
            b'(' | b'[' => {
                self.i += 1;
                Some(Tok::Open)
            }
            b')' | b']' | b'"' => None,
            _ => {
                let start = self.i;
                while self.i < bytes.len() {
                    let b = bytes[self.i];
                    if b.is_ascii_whitespace()
                        || matches!(b, b'(' | b')' | b'[' | b']' | b'"' | b';')
                    {
                        break;
                    }
                    self.i += 1;
                }
                Some(Tok::Word(&self.s[start..self.i]))
            }
        }
    }
}

/// One item slot's textual identity: its define/expr form plus (for
/// signed definitions) the paired signature form.
#[derive(Clone, Debug)]
struct SlotDesc {
    /// The `define`/expression form slice.
    form: usize,
    /// The paired `(: name …)` slice, if any.
    sig: Option<usize>,
    /// Is this a definition slot (vs a trailing expression)?
    is_define: bool,
    /// Hash of the constituent texts.
    key: u64,
}

/// Pairs signatures with their defines, mirroring the elaborator's
/// latest-unconsumed map, and returns slot descriptors **in check
/// order** (defines first, then trailing expressions). Returns `None`
/// whenever the textual account could diverge from the elaborator's —
/// an overwritten pending signature (silently dropped by the map) or a
/// leftover one (`W0001`) — so those modules take the full path.
fn pair_slots(src: &str, forms: &[FormSlice]) -> Option<Vec<SlotDesc>> {
    let mut pending: HashMap<&str, usize> = HashMap::new();
    let mut defines: Vec<SlotDesc> = Vec::new();
    let mut trailing: Vec<SlotDesc> = Vec::new();
    for (i, f) in forms.iter().enumerate() {
        match &f.head {
            Head::Sig(name) => {
                if pending.insert(name.as_str(), i).is_some() {
                    // The elaborator would silently drop the first
                    // signature (including its elaboration effects);
                    // don't try to replay that.
                    return None;
                }
            }
            Head::Define(name) => {
                let sig = pending.remove(name.as_str());
                let mut key = 0xCBF2_9CE4_8422_2325u64;
                if let Some(s) = sig {
                    text_hash(&mut key, forms[s].text(src));
                }
                text_hash(&mut key, f.text(src));
                defines.push(SlotDesc {
                    form: i,
                    sig,
                    is_define: true,
                    key,
                });
            }
            Head::Other => {
                let mut key = 0xCBF2_9CE4_8422_2325u64;
                text_hash(&mut key, f.text(src));
                trailing.push(SlotDesc {
                    form: i,
                    sig: None,
                    is_define: false,
                    key,
                });
            }
        }
    }
    if !pending.is_empty() {
        return None; // leftover signature: W0001 on the full path
    }
    defines.extend(trailing);
    Some(defines)
}

/// Elaborates one slot's form(s) into a [`ModuleItem`], with spans at
/// their absolute file positions. Returns `None` on any read or
/// elaboration error — the caller falls back to the full pipeline.
fn elaborate_slot(
    src: &str,
    forms: &[FormSlice],
    slot: &SlotDesc,
    elab: &mut Elaborator,
) -> Option<ModuleItem> {
    let mut signatures: HashMap<Symbol, (Ty, NodeId)> = HashMap::new();
    if let Some(s) = slot.sig {
        let f = &forms[s];
        let data = read_all_from(f.text(src), f.pos).ok()?;
        let [form] = data.as_slice() else { return None };
        let mut sig_order = Vec::new();
        signature_form(elab, form, &mut signatures, &mut sig_order).ok()?;
    }
    let f = &forms[slot.form];
    let data = read_all_from(f.text(src), f.pos).ok()?;
    let [form] = data.as_slice() else { return None };
    if slot.is_define {
        let item = define_form(elab, form, &mut signatures).ok()?;
        // The paired signature must actually be consumed — a textual
        // `(define (f …) …)` whose signature survives would mean our
        // pairing diverged from the elaborator's.
        signatures.is_empty().then_some(item)
    } else {
        match form
            .as_list()
            .and_then(|l| l.first())
            .and_then(Sexp::as_symbol)
        {
            // A head the module elaborator treats specially reaching an
            // expression slot means the scanner misclassified; bail.
            Some(":" | "define") => None,
            _ => {
                let e = elab.expr(form).ok()?;
                Some(ModuleItem::Expr {
                    node: e.span_node(),
                    expr: e,
                })
            }
        }
    }
}

/// A per-source incremental cache: the previous run's slot keys (for
/// textual matching) and the core driver's [`ItemCache`].
#[derive(Clone, Debug)]
pub struct ModuleCache {
    /// Slot keys in check order.
    keys: Vec<u64>,
    /// How many leading slots are definitions.
    n_defines: usize,
    /// The core per-item cache.
    core: ItemCache,
}

impl ModuleCache {
    /// Number of cached item slots.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Checks a module incrementally against the previous run's
/// [`ModuleCache`], falling back to [`check_module_source`] whenever
/// the fast path cannot prove equivalence.
///
/// Returns the report, the cache to use for the next edit (`None` when
/// this run fell back — keep the old cache in that case), and the
/// driver's [`RecheckStats`] when the incremental path ran.
pub fn check_module_source_incremental(
    src: &str,
    checker: &Checker,
    old: Option<&ModuleCache>,
) -> (ModuleReport, Option<ModuleCache>, Option<RecheckStats>) {
    let fallback = |src: &str| (check_module_source(src, checker), None, None);

    let Some(forms) = scan_forms(src) else {
        return fallback(src);
    };
    let Some(descs) = pair_slots(src, &forms) else {
        return fallback(src);
    };
    let n_defines = descs.iter().filter(|d| d.is_define).count();

    // Match new slots against the old run's keys, FIFO within each
    // partition so duplicates and reorders resolve positionally.
    let mut queues: HashMap<(bool, u64), std::collections::VecDeque<usize>> = HashMap::new();
    if let Some(c) = old {
        for (j, key) in c.keys.iter().enumerate() {
            queues
                .entry((j < c.n_defines, *key))
                .or_default()
                .push_back(j);
        }
    }

    let mut elab = Elaborator::new();
    let mut slots: Vec<IncrSlot> = Vec::with_capacity(descs.len());
    for d in &descs {
        match queues
            .get_mut(&(d.is_define, d.key))
            .and_then(|q| q.pop_front())
        {
            Some(j) => slots.push(IncrSlot::Reused(j)),
            None => match elaborate_slot(src, &forms, d, &mut elab) {
                Some(item) => slots.push(IncrSlot::Fresh(item)),
                None => return fallback(src),
            },
        }
    }

    let mut fetch = |i: usize| elaborate_slot(src, &forms, &descs[i], &mut elab);
    let Some((mc, core, stats)) =
        checker.check_module_incremental(&slots, old.map(|c| &c.core), &mut fetch)
    else {
        return fallback(src);
    };

    let spans = elab.into_spans();
    let mut diagnostics = mc.diagnostics;
    for d in &mut diagnostics {
        d.resolve_spans(&spans);
    }
    // Stamp every summary's extent from the *current* scan: spliced
    // summaries carry the previous run's span, which an edit above them
    // may have shifted. Results and descs share check order.
    let mut results = mc.results;
    debug_assert_eq!(results.len(), descs.len());
    for (summary, desc) in results.iter_mut().zip(&descs) {
        summary.span = Some(forms[desc.form].span(src));
    }
    let report = ModuleReport {
        diagnostics,
        results,
        value: mc.value,
    };
    let cache = ModuleCache {
        keys: descs.iter().map(|d| d.key).collect(),
        n_defines,
        core,
    };
    (report, Some(cache), Some(stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> Checker {
        Checker::default()
    }

    #[test]
    fn scanner_slices_match_the_reader() {
        let src = r#"
; header comment
(: f : [x : Int] -> Int)
(define (f x) (+ x 1)) ; tail comment
"str ; not a comment"
(f 2)
#rx"a;b"
42
        "#;
        let forms = scan_forms(src).expect("well-formed");
        let texts: Vec<&str> = forms.iter().map(|f| f.text(src)).collect();
        assert_eq!(
            texts,
            vec![
                "(: f : [x : Int] -> Int)",
                "(define (f x) (+ x 1))",
                "\"str ; not a comment\"",
                "(f 2)",
                "#rx\"a;b\"",
                "42",
            ]
        );
        assert_eq!(forms[0].head, Head::Sig("f".to_owned()));
        assert_eq!(forms[1].head, Head::Define("f".to_owned()));
        assert_eq!(forms[3].head, Head::Other);
        // Positions are reader-accurate.
        assert_eq!(forms[0].pos, Pos { line: 3, col: 1 });
    }

    #[test]
    fn scanner_rejects_what_the_reader_rejects() {
        assert!(scan_forms("(a b").is_none());
        assert!(scan_forms("(a]").is_none());
        assert!(scan_forms(")").is_none());
        assert!(scan_forms("\"abc").is_none());
    }

    #[test]
    fn leftover_or_overwritten_signatures_fall_back() {
        let forms = scan_forms("(: ghost : [x : Int] -> Int) (+ 1 2)").unwrap();
        assert!(pair_slots("(: ghost : [x : Int] -> Int) (+ 1 2)", &forms).is_none());
    }

    #[test]
    fn incremental_one_edit_matches_full_and_skips() {
        let v1 = "\
(: f : [x : Int] -> Int)
(define (f x) (+ x 1))
(: g : [x : Int] -> Int)
(define (g x) (f (f x)))
(: h : [x : Int] -> Int)
(define (h x) (+ x 3))
(h (g 1))
";
        let (r1, cache, s1) = check_module_source_incremental(v1, &checker(), None);
        assert!(r1.is_clean(), "{:#?}", r1.diagnostics);
        let cache = cache.expect("cold incremental run builds a cache");
        assert_eq!(s1.expect("ran incrementally").rechecked, 4);

        // Edit h's body only.
        let v2 = v1.replace("(+ x 3)", "(+ x 4)");
        let (r2, cache2, s2) = check_module_source_incremental(&v2, &checker(), Some(&cache));
        let full = check_module_source(&v2, &checker());
        assert!(r2.is_clean());
        assert_eq!(r2.error_count(), full.error_count());
        let s2 = s2.expect("incremental path ran");
        assert!(s2.skipped >= 3, "{s2:?}");
        assert_eq!(s2.rechecked, 1, "{s2:?}");
        assert!(cache2.is_some());

        // Edit that flips g ill-typed: the report matches the full one,
        // spans included.
        let v3 = v1.replace("(f (f x))", "(f #t)");
        let (r3, _, _) = check_module_source_incremental(&v3, &checker(), Some(&cache));
        let full3 = check_module_source(&v3, &checker());
        assert_eq!(r3.error_count(), full3.error_count());
        assert_eq!(r3.diagnostics.len(), full3.diagnostics.len());
        for (a, b) in r3.diagnostics.iter().zip(&full3.diagnostics) {
            assert_eq!(a.code, b.code);
            assert_eq!(a.primary, b.primary, "span must match the full path");
        }
    }

    #[test]
    fn syntax_errors_fall_back_to_the_full_path() {
        let src = "(define (f x) (if))";
        let (r, cache, stats) = check_module_source_incremental(src, &checker(), None);
        assert_eq!(r.error_count(), 1);
        assert!(cache.is_none(), "fallback builds no cache");
        assert!(stats.is_none());
    }
}
