//! # rtr-lang — the RTR surface language
//!
//! A Racket-style surface syntax for the λ_RTR calculus in `rtr-core`,
//! reproducing the pipeline of the paper's Typed Racket implementation:
//! an s-expression [`sexp`] reader, derived-form [`expand`]sion (`cond`,
//! `and`/`or`, `when`/`unless`, named `let`, and §4.4's `for/sum` →
//! `letrec` with the `Nat` index heuristic), [`elab`]oration of the
//! annotation syntax (`[x : Int]` dependent domains, `#:where` refined
//! ranges, `Refine`, `All`), the enriched [`base_env`], and a [`module`]
//! driver.
//!
//! # Examples
//!
//! ```
//! use rtr_core::check::Checker;
//! use rtr_lang::check_source;
//!
//! let src = r#"
//!     (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
//!     (define (max x y) (if (> x y) x y))
//!     (max 1 2)
//! "#;
//! assert!(check_source(src, &Checker::default()).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod base_env;
pub mod elab;
pub mod expand;
pub mod incremental;
pub mod module;
pub mod sexp;

pub use incremental::{check_module_source_incremental, ModuleCache};
pub use module::{
    check_module_source, check_source, elaborate_module, elaborate_module_items, run_source,
    run_source_unchecked, ElaboratedModule, LangError, ModuleReport,
};
