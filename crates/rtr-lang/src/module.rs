//! Module-level elaboration: signatures, definitions, and the program
//! driver (`check_source` / `run_source`).
//!
//! A module is a sequence of forms:
//!
//! ```racket
//! (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
//! (define (max x y) (if (> x y) x y))
//! (max 3 4)
//! ```
//!
//! Signatures attach to the next `define` of the same name; annotated
//! functions elaborate to `letrec` (so they may recur), unannotated
//! non-function definitions to `let`. Trailing expressions run in order;
//! the module's value is the last one.

use std::collections::HashMap;

use rtr_core::check::Checker;
use rtr_core::interp::{eval_program, EvalError, Value};
use rtr_core::syntax::{Expr, Lambda, Symbol, Ty};

use crate::elab::{err, ElabError, Elaborator};
use crate::expand::begin_form;
use crate::sexp::{read_all, ReadError, Sexp};

/// Any error arising from source text processing.
#[derive(Clone, PartialEq, Debug)]
pub enum LangError {
    /// Reader (lexical) error.
    Read(ReadError),
    /// Elaboration (syntax) error.
    Syntax(ElabError),
    /// Type error from the core checker.
    Type(rtr_core::errors::TypeError),
    /// Runtime error from the evaluator.
    Eval(EvalError),
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::Read(e) => write!(f, "{e}"),
            LangError::Syntax(e) => write!(f, "{e}"),
            LangError::Type(e) => write!(f, "{e}"),
            LangError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<ReadError> for LangError {
    fn from(e: ReadError) -> LangError {
        LangError::Read(e)
    }
}
impl From<ElabError> for LangError {
    fn from(e: ElabError) -> LangError {
        LangError::Syntax(e)
    }
}
impl From<rtr_core::errors::TypeError> for LangError {
    fn from(e: rtr_core::errors::TypeError) -> LangError {
        LangError::Type(e)
    }
}
impl From<EvalError> for LangError {
    fn from(e: EvalError) -> LangError {
        LangError::Eval(e)
    }
}

/// Elaborates a whole module into a single core expression.
pub fn elaborate_module(src: &str) -> Result<Expr, LangError> {
    let forms = read_all(src)?;
    let mut elab = Elaborator::new();
    let mut signatures: HashMap<Symbol, Ty> = HashMap::new();
    let mut builders: Vec<Box<dyn FnOnce(Expr) -> Expr>> = Vec::new();
    let mut trailing: Vec<Expr> = Vec::new();

    for form in &forms {
        let head = form
            .as_list()
            .and_then(|l| l.first())
            .and_then(Sexp::as_symbol)
            .unwrap_or("");
        match head {
            ":" => {
                let items = form.as_list().expect("head checked");
                // (: name T)  or the paper's (: name : dom … -> rng).
                let Some(name) = items.get(1).and_then(Sexp::as_symbol) else {
                    return Err(err::<()>(form.pos(), "(: name T)").unwrap_err().into());
                };
                let ty = if items.get(2).and_then(Sexp::as_symbol) == Some(":") {
                    let arrow = Sexp::List(items[3..].to_vec(), form.pos());
                    elab.ty(&arrow)?
                } else if items.len() == 3 {
                    elab.ty(&items[2])?
                } else {
                    let arrow = Sexp::List(items[2..].to_vec(), form.pos());
                    elab.ty(&arrow)?
                };
                signatures.insert(Symbol::intern(name), ty);
            }
            "define" => {
                let items = form.as_list().expect("head checked");
                match items.get(1) {
                    // (define (f params…) body…)
                    Some(Sexp::List(header, _)) => {
                        let Some(fname) = header.first().and_then(Sexp::as_symbol) else {
                            return Err(err::<()>(form.pos(), "(define (f …) …)")
                                .unwrap_err()
                                .into());
                        };
                        let fsym = Symbol::intern(fname);
                        let mut params = Vec::new();
                        for p in &header[1..] {
                            if let Some(name) = p.as_symbol() {
                                params.push((Symbol::intern(name), Ty::Top));
                            } else if let Some([x, colon, t]) = p
                                .as_list()
                                .filter(|l| l.len() == 3)
                                .map(|l| [&l[0], &l[1], &l[2]])
                            {
                                if colon.as_symbol() != Some(":") {
                                    return Err(err::<()>(
                                        p.pos(),
                                        "parameter must be x or [x : T]",
                                    )
                                    .unwrap_err()
                                    .into());
                                }
                                let Some(name) = x.as_symbol() else {
                                    return Err(err::<()>(
                                        x.pos(),
                                        "parameter name must be a symbol",
                                    )
                                    .unwrap_err()
                                    .into());
                                };
                                params.push((Symbol::intern(name), elab.ty(t)?));
                            } else {
                                return Err(err::<()>(p.pos(), "parameter must be x or [x : T]")
                                    .unwrap_err()
                                    .into());
                            }
                        }
                        let body = begin_form(elab.exprs(&items[2..])?);
                        match signatures.remove(&fsym) {
                            Some(sig) => {
                                let lam = std::sync::Arc::new(Lambda { params, body });
                                builders.push(Box::new(move |rest| {
                                    Expr::LetRec(fsym, sig, lam, Box::new(rest))
                                }));
                            }
                            None => {
                                // No signature: all parameters need
                                // annotations; bind non-recursively with a
                                // synthesized function type.
                                let lam = Expr::lam(params, body);
                                builders.push(Box::new(move |rest| Expr::let_(fsym, lam, rest)));
                            }
                        }
                    }
                    // (define x e) / (define x : T e) / (define x) with a
                    // prior signature.
                    Some(Sexp::Symbol(name, _)) => {
                        let xsym = Symbol::intern(name);
                        let value = match &items[2..] {
                            [e] => {
                                let e = elab.expr(e)?;
                                match signatures.remove(&xsym) {
                                    // `define` of a lambda with a prior
                                    // polymorphic/functional signature:
                                    // still use letrec for recursion.
                                    Some(sig) => {
                                        if let Expr::Lam(lam) = e {
                                            builders.push(Box::new(move |rest| {
                                                Expr::LetRec(xsym, sig, lam, Box::new(rest))
                                            }));
                                            continue;
                                        }
                                        Expr::ann(e, sig)
                                    }
                                    None => e,
                                }
                            }
                            [colon, t, e] if colon.as_symbol() == Some(":") => {
                                let ty = elab.ty(t)?;
                                Expr::ann(elab.expr(e)?, ty)
                            }
                            _ => {
                                return Err(err::<()>(form.pos(), "(define x e)")
                                    .unwrap_err()
                                    .into())
                            }
                        };
                        builders.push(Box::new(move |rest| Expr::let_(xsym, value, rest)));
                    }
                    _ => {
                        return Err(err::<()>(form.pos(), "malformed define")
                            .unwrap_err()
                            .into())
                    }
                }
            }
            _ => trailing.push(elab.expr(form)?),
        }
    }

    let mut program = begin_form(trailing);
    if matches!(program, Expr::Begin(ref es) if es.is_empty()) {
        program = Expr::Bool(true);
    }
    for b in builders.into_iter().rev() {
        program = b(program);
    }
    Ok(program)
}

/// Parses, elaborates and type checks a module; returns its type-result.
pub fn check_source(src: &str, checker: &Checker) -> Result<rtr_core::syntax::TyResult, LangError> {
    let e = elaborate_module(src)?;
    Ok(checker.check_program(&e)?)
}

/// Parses, elaborates, type checks and runs a module.
pub fn run_source(src: &str, checker: &Checker, fuel: u64) -> Result<Value, LangError> {
    let e = elaborate_module(src)?;
    checker.check_program(&e)?;
    Ok(eval_program(&e, fuel)?)
}

/// Runs a module without type checking (used to demonstrate dynamic
/// failures the checker would have prevented).
pub fn run_source_unchecked(src: &str, fuel: u64) -> Result<Value, LangError> {
    let e = elaborate_module(src)?;
    Ok(eval_program(&e, fuel)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> Checker {
        Checker::default()
    }

    #[test]
    fn fig1_max_source() {
        let src = r#"
            (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
            (define (max x y) (if (> x y) x y))
            (max 3 7)
        "#;
        let r = check_source(src, &checker()).expect("max module must check");
        // The range is dependent: instantiated with the literal arguments.
        assert_eq!(r.ty.to_string(), "{z : Int | ((3 ≤ z) ∧ (7 ≤ z))}");
        let v = run_source(src, &checker(), 10_000).unwrap();
        assert!(matches!(v, Value::Int(7)));
    }

    #[test]
    fn define_without_signature_needs_annotations() {
        let src = "(define (id [x : Int]) x) (id 4)";
        let v = run_source(src, &checker(), 10_000).unwrap();
        assert!(matches!(v, Value::Int(4)));
    }

    #[test]
    fn value_definitions() {
        let src = "(define n 10) (define m : Int (+ n 1)) (+ n m)";
        let v = run_source(src, &checker(), 10_000).unwrap();
        assert!(matches!(v, Value::Int(21)));
    }

    #[test]
    fn empty_module_is_true() {
        let v = run_source("", &checker(), 10).unwrap();
        assert!(matches!(v, Value::Bool(true)));
    }

    #[test]
    fn type_errors_surface() {
        let src = "(define (f [x : Int]) (add1 x)) (f #t)";
        assert!(matches!(
            check_source(src, &checker()),
            Err(LangError::Type(_))
        ));
    }

    #[test]
    fn paper_colon_style_signature() {
        // The exact Fig. 1 header shape: (: max : [x : Int] … -> …).
        let src = r#"
            (: lsb : [n : (U Int (Pairof Int Int))] -> Int)
            (define (lsb n)
              (if (int? n) (if (even? n) 0 1) (fst n)))
            (lsb 6)
        "#;
        let v = run_source(src, &checker(), 10_000).unwrap();
        assert!(matches!(v, Value::Int(0)));
    }
}
