//! Module-level elaboration and the program drivers.
//!
//! A module is a sequence of forms:
//!
//! ```racket
//! (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
//! (define (max x y) (if (> x y) x y))
//! (max 3 4)
//! ```
//!
//! Signatures attach to the next `define` of the same name; annotated
//! functions elaborate to `letrec` (so they may recur), unannotated
//! non-function definitions to `let`. Trailing expressions run in order;
//! the module's value is the last one.
//!
//! Elaboration produces an [`ElaboratedModule`]: the item-structured
//! form ([`rtr_core::module::ModuleItem`]) the recovering checker
//! consumes, the [`SpanTable`] mapping every expression back to the
//! surface source, and any per-form syntax errors (a malformed form is
//! skipped — its `define`d name, when recoverable, is poisoned instead
//! of cascading into unbound-variable errors).
//!
//! Two checking entry points sit on top:
//!
//! * [`check_module_source`] — the diagnostics-first path: never fails,
//!   returns a [`ModuleReport`] with *every* diagnostic located in the
//!   source. This is what [`rtr` sessions][paper] and the corpus
//!   classifier use.
//! * [`check_source`] — the historical fail-fast shim (first error
//!   only), kept for compatibility. Deprecated: prefer
//!   [`check_module_source`] or the facade's `Session`.
//!
//! [paper]: https://doi.org/10.1145/2908080.2908091

use std::collections::HashMap;
use std::sync::Arc;

use rtr_core::check::Checker;
use rtr_core::diag::{Code, Diagnostic, SpanTable};
use rtr_core::interp::{eval_program, EvalError, Value};
use rtr_core::module::{ItemSummary, ModuleItem};
use rtr_core::syntax::{Expr, Lambda, Symbol, Ty, TyResult};

use crate::elab::{err, ElabError, Elaborator};
use crate::expand::begin_form;
use crate::sexp::{read_all, ReadError, Sexp, Span};

/// Any error arising from source text processing.
#[derive(Clone, PartialEq, Debug)]
pub enum LangError {
    /// Reader (lexical) error.
    Read(ReadError),
    /// Elaboration (syntax) error.
    Syntax(ElabError),
    /// Type error from the core checker.
    Type(rtr_core::diag::Diagnostic),
    /// Runtime error from the evaluator.
    Eval(EvalError),
}

impl LangError {
    /// The error as a located [`Diagnostic`] (`E0101`/`E0102` for
    /// reader/syntax errors, `E0201` for runtime failures; type errors
    /// pass through).
    pub fn to_diagnostic(&self) -> Diagnostic {
        match self {
            LangError::Read(e) => {
                Diagnostic::read_error(format!("read error: {}", e.message), Span::point(e.pos))
            }
            LangError::Syntax(e) => e.to_diagnostic(),
            LangError::Type(d) => d.clone(),
            LangError::Eval(e) => {
                Diagnostic::new(Code::RuntimeError, format!("runtime error: {e}"))
            }
        }
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::Read(e) => write!(f, "{e}"),
            LangError::Syntax(e) => write!(f, "{e}"),
            LangError::Type(e) => write!(f, "{e}"),
            LangError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<ReadError> for LangError {
    fn from(e: ReadError) -> LangError {
        LangError::Read(e)
    }
}
impl From<ElabError> for LangError {
    fn from(e: ElabError) -> LangError {
        LangError::Syntax(e)
    }
}
impl From<rtr_core::diag::Diagnostic> for LangError {
    fn from(e: rtr_core::diag::Diagnostic) -> LangError {
        LangError::Type(e)
    }
}
impl From<EvalError> for LangError {
    fn from(e: EvalError) -> LangError {
        LangError::Eval(e)
    }
}

/// A fully elaborated module: structured items, the span table, and any
/// per-form syntax errors collected along the way.
#[derive(Clone, Debug)]
pub struct ElaboratedModule {
    /// The module's forms in order (definitions and trailing
    /// expressions).
    pub items: Vec<ModuleItem>,
    /// Spans for every elaborated expression node.
    pub spans: SpanTable,
    /// Syntax errors of skipped forms (empty for a well-formed module).
    pub syntax_errors: Vec<ElabError>,
    /// Warnings (currently: `W0001` signatures without a definition).
    pub warnings: Vec<Diagnostic>,
}

impl ElaboratedModule {
    /// The classic nested core encoding: every definition wraps the
    /// trailing expressions as `letrec`/`let`, exactly as the paper's
    /// driver built it. Used by the evaluator and the fail-fast shim.
    /// Clones the items; callers done with the module use
    /// [`ElaboratedModule::into_program`] instead.
    pub fn program(&self) -> Expr {
        nest_program(self.items.clone())
    }

    /// [`ElaboratedModule::program`] by move — no AST clone.
    pub fn into_program(self) -> Expr {
        nest_program(self.items)
    }

    /// Were all forms well-formed?
    pub fn is_well_formed(&self) -> bool {
        self.syntax_errors.is_empty()
    }
}

/// Folds items into the nested `letrec`/`let` core encoding.
fn nest_program(items: Vec<ModuleItem>) -> Expr {
    let mut defines: Vec<ModuleItem> = Vec::with_capacity(items.len());
    let mut trailing: Vec<Expr> = Vec::new();
    for item in items {
        match item {
            ModuleItem::Expr { expr, .. } => trailing.push(expr),
            // Opaque items only exist when elaboration failed; the
            // strict callers below bail out before building a program
            // in that case.
            ModuleItem::Opaque { .. } => {}
            define => defines.push(define),
        }
    }
    let mut program = begin_form(trailing);
    if matches!(program, Expr::Begin(ref es) if es.is_empty()) {
        program = Expr::Bool(true);
    }
    for item in defines.into_iter().rev() {
        match item {
            ModuleItem::DefineRec { name, sig, lam, .. } => {
                program = Expr::LetRec(name, sig, lam, Box::new(program));
            }
            ModuleItem::Define { name, rhs, .. } => {
                program = Expr::let_(name, rhs, program);
            }
            ModuleItem::Opaque { .. } | ModuleItem::Expr { .. } => unreachable!("partitioned"),
        }
    }
    program
}

/// Elaborates a module into structured items plus spans, recovering
/// from per-form syntax errors (a malformed form is recorded and
/// skipped; a malformed `define` still binds its name opaquely).
///
/// # Errors
///
/// Only lexical ([`ReadError`]) failures abort elaboration — without a
/// datum stream there is nothing to recover.
pub fn elaborate_module_items(src: &str) -> Result<ElaboratedModule, ReadError> {
    let forms = read_all(src)?;
    let mut elab = Elaborator::new();
    let mut signatures: HashMap<Symbol, (Ty, rtr_core::diag::NodeId)> = HashMap::new();
    let mut sig_order: Vec<Symbol> = Vec::new();
    let mut items: Vec<ModuleItem> = Vec::new();
    let mut syntax_errors: Vec<ElabError> = Vec::new();
    // Names whose signature failed to elaborate: the matching define is
    // bound opaquely and *not* checked (without its declared type, body
    // diagnostics would be spurious).
    let mut failed_sigs: std::collections::HashSet<Symbol> = std::collections::HashSet::new();

    for form in &forms {
        let head = form
            .as_list()
            .and_then(|l| l.first())
            .and_then(Sexp::as_symbol)
            .unwrap_or("");
        if head == "define" {
            if let Some(name) = defined_name(form) {
                if failed_sigs.remove(&name) {
                    items.push(ModuleItem::Opaque { name, ty: Ty::Top });
                    continue;
                }
            }
        }
        let result = match head {
            ":" => signature_form(&mut elab, form, &mut signatures, &mut sig_order).map(|()| None),
            "define" => define_form(&mut elab, form, &mut signatures).map(Some),
            _ => elab.expr(form).map(|e| {
                Some(ModuleItem::Expr {
                    node: e.span_node(),
                    expr: e,
                })
            }),
        };
        match result {
            Ok(Some(item)) => items.push(item),
            Ok(None) => {}
            Err(e) => {
                match head {
                    // A malformed define still shadows its name (at the
                    // declared type if a signature exists) so later
                    // forms don't cascade into unbound-variable errors.
                    "define" => {
                        if let Some(name) = defined_name(form) {
                            let ty = signatures.remove(&name).map(|(t, _)| t).unwrap_or(Ty::Top);
                            items.push(ModuleItem::Opaque { name, ty });
                        }
                    }
                    // A malformed signature poisons its define the same
                    // way: without the declared type, checking the body
                    // would only manufacture spurious diagnostics.
                    ":" => {
                        if let Some(name) = form
                            .as_list()
                            .and_then(|l| l.get(1))
                            .and_then(Sexp::as_symbol)
                        {
                            failed_sigs.insert(Symbol::intern(name));
                        }
                    }
                    _ => {}
                }
                syntax_errors.push(e);
            }
        }
    }

    let warnings = sig_order
        .iter()
        .filter_map(|name| signatures.get(name).map(|(_, node)| (*name, *node)))
        .map(|(name, node)| {
            Diagnostic::new(
                Code::UnusedSignature,
                format!("the signature for {name} has no matching define"),
            )
            .or_node(node)
        })
        .collect();

    Ok(ElaboratedModule {
        items,
        spans: elab.into_spans(),
        syntax_errors,
        warnings,
    })
}

/// `(: name T)` or the paper's `(: name : dom … -> rng)`.
pub(crate) fn signature_form(
    elab: &mut Elaborator,
    form: &Sexp,
    signatures: &mut HashMap<Symbol, (Ty, rtr_core::diag::NodeId)>,
    sig_order: &mut Vec<Symbol>,
) -> Result<(), ElabError> {
    let items = form.as_list().expect("head checked");
    let Some(name) = items.get(1).and_then(Sexp::as_symbol) else {
        return err(form.span(), "(: name T)");
    };
    let ty = if items.get(2).and_then(Sexp::as_symbol) == Some(":") {
        let arrow = Sexp::List(items[3..].to_vec(), form.span());
        elab.ty(&arrow)?
    } else if items.len() == 3 {
        elab.ty(&items[2])?
    } else {
        let arrow = Sexp::List(items[2..].to_vec(), form.span());
        elab.ty(&arrow)?
    };
    let sym = Symbol::intern(name);
    let node = elab.form_node(form.span());
    signatures.insert(sym, (ty, node));
    sig_order.push(sym);
    Ok(())
}

/// The name a `define` form would bind, if it is recoverable from the
/// shape alone (used to poison bindings of malformed defines).
fn defined_name(form: &Sexp) -> Option<Symbol> {
    let items = form.as_list()?;
    match items.get(1) {
        Some(Sexp::Symbol(name, _)) => Some(Symbol::intern(name)),
        Some(Sexp::List(header, _)) => header.first().and_then(Sexp::as_symbol).map(Symbol::intern),
        _ => None,
    }
}

pub(crate) fn define_form(
    elab: &mut Elaborator,
    form: &Sexp,
    signatures: &mut HashMap<Symbol, (Ty, rtr_core::diag::NodeId)>,
) -> Result<ModuleItem, ElabError> {
    let items = form.as_list().expect("head checked");
    let node = Some(elab.form_node(form.span()));
    match items.get(1) {
        // (define (f params…) body…)
        Some(Sexp::List(header, _)) => {
            let Some(fname) = header.first().and_then(Sexp::as_symbol) else {
                return err(form.span(), "(define (f …) …)");
            };
            let fsym = Symbol::intern(fname);
            let mut params = Vec::new();
            for p in &header[1..] {
                if let Some(name) = p.as_symbol() {
                    params.push((Symbol::intern(name), Ty::Top));
                } else if let Some([x, colon, t]) = p
                    .as_list()
                    .filter(|l| l.len() == 3)
                    .map(|l| [&l[0], &l[1], &l[2]])
                {
                    if colon.as_symbol() != Some(":") {
                        return err(p.span(), "parameter must be x or [x : T]");
                    }
                    let Some(name) = x.as_symbol() else {
                        return err(x.span(), "parameter name must be a symbol");
                    };
                    params.push((Symbol::intern(name), elab.ty(t)?));
                } else {
                    return err(p.span(), "parameter must be x or [x : T]");
                }
            }
            let body = begin_form(elab.exprs(&items[2..])?);
            match signatures.remove(&fsym) {
                Some((sig, sig_node)) => Ok(ModuleItem::DefineRec {
                    name: fsym,
                    sig,
                    lam: Arc::new(Lambda { params, body }),
                    node,
                    sig_node: Some(sig_node),
                }),
                None => {
                    // No signature: all parameters need annotations;
                    // bind non-recursively with a synthesized function
                    // type.
                    Ok(ModuleItem::Define {
                        name: fsym,
                        sig: None,
                        rhs: Expr::lam(params, body),
                        node,
                        sig_node: None,
                    })
                }
            }
        }
        // (define x e) / (define x : T e) / with a prior signature.
        Some(Sexp::Symbol(name, _)) => {
            let xsym = Symbol::intern(name);
            match &items[2..] {
                [e] => {
                    let e = elab.expr(e)?;
                    match signatures.remove(&xsym) {
                        // `define` of a lambda with a prior
                        // polymorphic/functional signature: still use
                        // letrec for recursion.
                        Some((sig, sig_node)) => {
                            if let Expr::Lam(lam) = e.peel_spans() {
                                return Ok(ModuleItem::DefineRec {
                                    name: xsym,
                                    sig,
                                    lam: lam.clone(),
                                    node,
                                    sig_node: Some(sig_node),
                                });
                            }
                            Ok(ModuleItem::Define {
                                name: xsym,
                                sig: Some(sig.clone()),
                                rhs: Expr::ann(e, sig),
                                node,
                                sig_node: Some(sig_node),
                            })
                        }
                        None => Ok(ModuleItem::Define {
                            name: xsym,
                            sig: None,
                            rhs: e,
                            node,
                            sig_node: None,
                        }),
                    }
                }
                [colon, t, e] if colon.as_symbol() == Some(":") => {
                    let ty = elab.ty(t)?;
                    Ok(ModuleItem::Define {
                        name: xsym,
                        sig: Some(ty.clone()),
                        rhs: Expr::ann(elab.expr(e)?, ty),
                        node,
                        sig_node: None,
                    })
                }
                _ => err(form.span(), "(define x e)"),
            }
        }
        _ => err(form.span(), "malformed define"),
    }
}

/// Elaborates a whole module into a single core expression (the nested
/// `letrec`/`let` encoding). Fail-fast: the first syntax error wins.
#[allow(clippy::result_large_err)] // cold entry points; Diagnostic stays unboxed in the public shape
pub fn elaborate_module(src: &str) -> Result<Expr, LangError> {
    let m = elaborate_module_items(src)?;
    if let Some(e) = m.syntax_errors.first() {
        return Err(LangError::Syntax(e.clone()));
    }
    Ok(m.into_program())
}

/// Parses, elaborates and type checks a module; returns its type-result.
///
/// **Deprecated shim**: fail-fast — only the *first* error surfaces, as
/// a [`LangError`]. New code should use [`check_module_source`] (or the
/// facade's `Session`), which reports every diagnostic with spans.
#[allow(clippy::result_large_err)] // cold entry points; Diagnostic stays unboxed in the public shape
pub fn check_source(src: &str, checker: &Checker) -> Result<TyResult, LangError> {
    let m = elaborate_module_items(src)?;
    if let Some(e) = m.syntax_errors.first() {
        return Err(LangError::Syntax(e.clone()));
    }
    let spans = m.spans;
    let program = nest_program(m.items);
    checker.check_program_owned(program).map_err(|mut d| {
        d.resolve_spans(&spans);
        LangError::Type(d)
    })
}

/// Everything learned from checking one module's source: located
/// diagnostics (reader, syntax, warnings and type errors — *all* of
/// them, thanks to the recovering checker), per-item outcomes and the
/// module's value type.
#[derive(Clone, Debug, Default)]
pub struct ModuleReport {
    /// All diagnostics in source-processing order, spans resolved.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-item outcomes (definitions first, then trailing expressions).
    pub results: Vec<ItemSummary>,
    /// The type-result of the module's final trailing expression.
    pub value: Option<TyResult>,
}

impl ModuleReport {
    /// No error-severity diagnostics (warnings allowed).
    pub fn is_clean(&self) -> bool {
        !self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }
}

/// Checks a module diagnostics-first: parses, elaborates (recovering
/// per form) and checks every item (recovering per definition), so the
/// report carries **all** of the module's diagnostics with resolved
/// spans. Never fails — a module that cannot even be read produces a
/// report with one `E0101` diagnostic.
pub fn check_module_source(src: &str, checker: &Checker) -> ModuleReport {
    let m = match elaborate_module_items(src) {
        Err(e) => {
            return ModuleReport {
                diagnostics: vec![LangError::Read(e).to_diagnostic()],
                results: Vec::new(),
                value: None,
            }
        }
        Ok(m) => m,
    };
    let mut diagnostics: Vec<Diagnostic> = m
        .syntax_errors
        .iter()
        .map(ElabError::to_diagnostic)
        .collect();
    diagnostics.extend(m.warnings.iter().cloned());
    let mc = checker.check_module(&m.items);
    diagnostics.extend(mc.diagnostics);
    for d in &mut diagnostics {
        d.resolve_spans(&m.spans);
    }
    let mut results = mc.results;
    stamp_item_spans(&mut results, &m.items, &m.spans);
    ModuleReport {
        diagnostics,
        results,
        value: mc.value,
    }
}

/// Stamps each [`ItemSummary`] with its item's surface extent from the
/// *current* parse. Summaries arrive from the core checker span-less
/// (and, on the incremental path, spliced summaries carry whatever the
/// previous run recorded), so positions are always re-derived here,
/// after the check. Results are ordered definitions first then trailing
/// expressions; `items` is in source order, so the zip re-applies the
/// same partition.
fn stamp_item_spans(results: &mut [ItemSummary], items: &[ModuleItem], spans: &SpanTable) {
    let node_of = |item: &ModuleItem| match item {
        ModuleItem::DefineRec { node, .. }
        | ModuleItem::Define { node, .. }
        | ModuleItem::Expr { node, .. } => *node,
        ModuleItem::Opaque { .. } => None,
    };
    let is_expr = |item: &&ModuleItem| matches!(item, ModuleItem::Expr { .. });
    let ordered = items
        .iter()
        .filter(|i| !is_expr(i))
        .chain(items.iter().filter(is_expr));
    for (summary, item) in results.iter_mut().zip(ordered) {
        summary.span = node_of(item).map(|n| spans.get(n));
    }
}

/// Parses, elaborates, type checks and runs a module.
#[allow(clippy::result_large_err)] // cold entry points; Diagnostic stays unboxed in the public shape
pub fn run_source(src: &str, checker: &Checker, fuel: u64) -> Result<Value, LangError> {
    let m = elaborate_module_items(src)?;
    if let Some(e) = m.syntax_errors.first() {
        return Err(LangError::Syntax(e.clone()));
    }
    let spans = m.spans;
    let program = nest_program(m.items);
    checker.check_program(&program).map_err(|mut d| {
        d.resolve_spans(&spans);
        LangError::Type(d)
    })?;
    Ok(eval_program(&program, fuel)?)
}

/// Runs a module without type checking (used to demonstrate dynamic
/// failures the checker would have prevented).
#[allow(clippy::result_large_err)] // cold entry points; Diagnostic stays unboxed in the public shape
pub fn run_source_unchecked(src: &str, fuel: u64) -> Result<Value, LangError> {
    let e = elaborate_module(src)?;
    Ok(eval_program(&e, fuel)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::diag::Code;

    fn checker() -> Checker {
        Checker::default()
    }

    #[test]
    fn fig1_max_source() {
        let src = r#"
            (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
            (define (max x y) (if (> x y) x y))
            (max 3 7)
        "#;
        let r = check_source(src, &checker()).expect("max module must check");
        // The range is dependent: instantiated with the literal arguments.
        assert_eq!(r.ty.to_string(), "{z : Int | ((3 ≤ z) ∧ (7 ≤ z))}");
        let v = run_source(src, &checker(), 10_000).unwrap();
        assert!(matches!(v, Value::Int(7)));
    }

    #[test]
    fn define_without_signature_needs_annotations() {
        let src = "(define (id [x : Int]) x) (id 4)";
        let v = run_source(src, &checker(), 10_000).unwrap();
        assert!(matches!(v, Value::Int(4)));
    }

    #[test]
    fn value_definitions() {
        let src = "(define n 10) (define m : Int (+ n 1)) (+ n m)";
        let v = run_source(src, &checker(), 10_000).unwrap();
        assert!(matches!(v, Value::Int(21)));
    }

    #[test]
    fn empty_module_is_true() {
        let v = run_source("", &checker(), 10).unwrap();
        assert!(matches!(v, Value::Bool(true)));
    }

    #[test]
    fn type_errors_surface() {
        let src = "(define (f [x : Int]) (add1 x)) (f #t)";
        assert!(matches!(
            check_source(src, &checker()),
            Err(LangError::Type(_))
        ));
    }

    #[test]
    fn paper_colon_style_signature() {
        // The exact Fig. 1 header shape: (: max : [x : Int] … -> …).
        let src = r#"
            (: lsb : [n : (U Int (Pairof Int Int))] -> Int)
            (define (lsb n)
              (if (int? n) (if (even? n) 0 1) (fst n)))
            (lsb 6)
        "#;
        let v = run_source(src, &checker(), 10_000).unwrap();
        assert!(matches!(v, Value::Int(0)));
    }

    #[test]
    fn recovery_reports_every_failing_define_with_spans() {
        let src = "\
(: f : [x : Int] -> Int)
(define (f x) #t)
(: g : [x : Int] -> Int)
(define (g x) x)
(: h : [x : Int] -> Int)
(define (h x) (f (g #f)))
";
        let report = check_module_source(src, &checker());
        assert_eq!(report.error_count(), 2, "{:#?}", report.diagnostics);
        let spans: Vec<_> = report
            .diagnostics
            .iter()
            .map(|d| d.primary.expect("every diagnostic is located"))
            .collect();
        // First error: the body of f (line 2); second: the argument of g
        // (line 6).
        assert_eq!(spans[0].start.line, 2);
        assert_eq!(spans[1].start.line, 6);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code == Code::TypeMismatch));
    }

    #[test]
    fn recovery_agrees_with_the_fail_fast_shim() {
        for src in [
            "(define (f [x : Int]) (add1 x)) (f 1)",
            "(define (f [x : Int]) (add1 x)) (f #t)",
            "(define n 10) (define m : Int (+ n 1)) (+ n m)",
            "(: f : [x : Int] -> Int) (define (f x) #t)",
            "(+ 1 2) (+ 3 #t) (+ 4 5)",
        ] {
            let strict = check_source(src, &checker()).is_ok();
            let report = check_module_source(src, &checker());
            assert_eq!(strict, report.is_clean(), "disagreement on {src}");
        }
    }

    #[test]
    fn syntax_recovery_skips_the_form_and_poisons_the_name() {
        let src = "\
(: f : [x : Int] -> Int)
(define (f x) (if))
(define (g [y : Int]) y)
(g 1)
";
        let report = check_module_source(src, &checker());
        // One syntax error; no unbound-variable cascade for f.
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.diagnostics[0].code, Code::SyntaxError);
        assert!(report.value.is_some());
    }

    #[test]
    fn failed_signature_poisons_its_define_without_cascading() {
        // The signature fails to elaborate (unknown type Bogus); the
        // matching define must be bound opaquely and not checked, so the
        // only *body* diagnostic is the E0102 itself (no spurious
        // mismatches from checking f at the wrong type).
        let src = "\
(: f : [x : Int] -> Bogus)
(define (f x) (if (= x 0) 0 (f (- x 1))))
(define (g [y : Int]) (add1 y))
(g 2)
";
        let report = check_module_source(src, &checker());
        assert_eq!(report.error_count(), 1, "{:#?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].code, Code::SyntaxError);
        assert!(report.value.is_some(), "g and (g 2) still check");
    }

    #[test]
    fn module_value_is_lifted_out_of_local_scope() {
        // The reported value must not mention module-local bindings —
        // the same lifting substitution the nested encoding applies at
        // every binder exit.
        let src = "(define b #t) (if b 1 2)";
        let report = check_module_source(src, &checker());
        assert!(report.is_clean());
        let value = report.value.expect("value");
        let strict = check_source(src, &checker()).expect("checks");
        // The existentialized binder is freshened per elaboration run
        // (`b%24` vs `b%25`), so compare modulo the fresh suffix.
        fn normalize(r: &TyResult) -> String {
            let mut out = String::new();
            let rendered = format!("{r:?}");
            let mut chars = rendered.chars().peekable();
            while let Some(c) = chars.next() {
                if c == '%' {
                    while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                        chars.next();
                    }
                } else {
                    out.push(c);
                }
            }
            out
        }
        assert_eq!(
            normalize(&value),
            normalize(&strict),
            "session value must match the shim's up to fresh renaming"
        );

        // And a free-variable scan agrees: nothing module-local leaks.
        let mut fv = std::collections::HashSet::new();
        value.then_p.free_vars(&mut fv);
        value.else_p.free_vars(&mut fv);
        let locals: Vec<_> = value.existentials.iter().map(|(x, _)| *x).collect();
        for x in fv {
            assert!(
                locals.contains(&x) || x != Symbol::intern("b"),
                "module-local b leaked into the value"
            );
        }
    }

    #[test]
    fn runtime_errors_map_to_their_own_code() {
        let err = run_source("(add1 1)", &checker(), 1).unwrap_err();
        assert_eq!(err.to_diagnostic().code, Code::RuntimeError);
        assert_eq!(Code::RuntimeError.as_str(), "E0201");
    }

    #[test]
    fn unused_signatures_warn_without_failing() {
        let src = "(: ghost : [x : Int] -> Int) (+ 1 2)";
        let report = check_module_source(src, &checker());
        assert!(report.is_clean());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, Code::UnusedSignature);
        assert!(report.diagnostics[0].primary.is_some());
    }
}
